//! The validated SRAM macro spec and its TOML schema.
//!
//! A spec is everything the generator needs to emit a complete macro:
//! sub-array geometry, column mux, bank contents (explicit word counts or
//! an ANN layer topology), the 8T/6T cell-mix policy, the active and
//! drowsy supply voltages, and whether the SECDED baseline rides along.
//!
//! Decoding is **total**: [`SramSpec::from_toml_str`] returns a typed
//! [`GenError`] for any input — truncated files, overflow-sized claims,
//! unknown keys — and every range check happens on parsed scalars before
//! any geometry-sized allocation exists.
//!
//! ```
//! use sram_gen::spec::SramSpec;
//! let spec = SramSpec::from_toml_str(
//!     "name = \"demo\"\n\
//!      [array]\nrows = 128\ncols = 128\nmux = 4\n\
//!      [banks]\nlayers = [16, 8, 4]\n\
//!      [mix]\npolicy = \"msb\"\nsplit = 0.375\n\
//!      [supply]\nvdd = 0.7\ndrowsy = 0.45\n",
//! )
//! .expect("valid spec");
//! assert_eq!(spec.bank_count(), 2);
//! assert_eq!(spec.msb_counts(), vec![3, 3]);
//! ```

use crate::error::GenError;
use crate::toml::{Document, Value};
use fault_inject::protection::ProtectionPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sram_array::organization::SubArrayDims;

/// Smallest accepted sub-array edge.
pub const MIN_EDGE: usize = 8;
/// Largest accepted sub-array edge (rows or columns).
pub const MAX_EDGE: usize = 1024;
/// Largest accepted column-mux factor.
pub const MAX_MUX: usize = 32;
/// Most banks a spec may describe.
pub const MAX_BANKS: usize = 32;
/// Most words one bank may hold (fits the million-synapse fixture's
/// largest layer with headroom).
pub const MAX_BANK_WORDS: usize = 1 << 21;
/// Most words a whole spec may hold.
pub const MAX_TOTAL_WORDS: usize = 1 << 22;
/// Most ANN layers (including input) a workload topology may have.
pub const MAX_LAYERS: usize = 6;
/// Widest accepted ANN layer.
pub const MAX_LAYER_WIDTH: usize = 4096;
/// Supply-voltage window the characterization stack is trusted over.
pub const VDD_RANGE: (f64, f64) = (0.5, 1.1);
/// Lowest accepted drowsy retention voltage.
pub const DROWSY_MIN: f64 = 0.3;
/// Default network-init seed for workload-defined banks.
pub const DEFAULT_NET_SEED: u64 = 5;

/// What the banks hold.
#[derive(Debug, Clone, PartialEq)]
pub enum BankSpec {
    /// Explicit per-bank word counts (a raw storage macro).
    Words(Vec<usize>),
    /// An ANN layer topology; banks are derived one-per-weight-layer
    /// (`inputs*outputs + outputs` words each), enabling the full
    /// fault-injected inference smoke.
    Layers {
        /// Layer widths, input layer first.
        sizes: Vec<usize>,
        /// Seed for the deterministic network initialization.
        seed: u64,
    },
}

/// The 8T/6T cell-mix policy.
#[derive(Debug, Clone, PartialEq)]
pub enum MixPolicy {
    /// Everything in 6T cells (the paper's base configuration).
    Uniform6T,
    /// The same fraction of MSBs of every word in 8T cells
    /// (Configuration 1); `split` is the fraction of *bits* protected.
    Msb {
        /// Fraction of each word's bits stored in 8T cells.
        split: f64,
    },
    /// Significance-graded protection (Configuration 2 flavor): earlier
    /// (input-side) banks get proportionally more protected MSBs, with
    /// the across-bank average pinned to `split`.
    Graded {
        /// Average fraction of bits stored in 8T cells.
        split: f64,
    },
    /// Explicit per-bank protected-MSB counts.
    PerBank {
        /// Protected MSBs per bank, input-side bank first.
        msb_8t: Vec<u8>,
    },
}

/// Active and drowsy supply points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplySpec {
    /// Active (read/write) supply voltage.
    pub vdd: f64,
    /// Drowsy retention voltage.
    pub drowsy: f64,
}

/// A fully validated macro spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SramSpec {
    /// Display name (report rows, CI tables).
    pub name: String,
    /// Sub-array geometry.
    pub dims: SubArrayDims,
    /// Column-mux factor: `cols / mux` bitline pairs share one sense amp.
    pub mux: usize,
    /// Bank contents.
    pub banks: BankSpec,
    /// Cell-mix policy.
    pub mix: MixPolicy,
    /// Supply points.
    pub supply: SupplySpec,
    /// Whether the SECDED(8) baseline's overheads are included.
    pub ecc: bool,
}

impl SramSpec {
    /// Parses and validates a spec from TOML text.
    ///
    /// # Errors
    ///
    /// Any syntax, schema, or range violation returns the corresponding
    /// [`GenError`]; this function never panics, for any input.
    pub fn from_toml_str(text: &str) -> Result<Self, GenError> {
        let mut doc = Document::parse(text)?;
        let name = take_string(&mut doc, "name")?.unwrap_or_else(|| "spec".to_string());
        let rows = require(take_usize(&mut doc, "array.rows")?, "array.rows")?;
        let cols = require(take_usize(&mut doc, "array.cols")?, "array.cols")?;
        let mux = take_usize(&mut doc, "array.mux")?.unwrap_or(4);

        let words = take_usize_array(&mut doc, "banks.words")?;
        let layers = take_usize_array(&mut doc, "banks.layers")?;
        let net_seed = take_u64(&mut doc, "banks.seed")?;
        let banks = match (words, layers) {
            (Some(_), Some(_)) => {
                return Err(GenError::Geometry {
                    message: "give either banks.words or banks.layers, not both".into(),
                })
            }
            (Some(words), None) => {
                if net_seed.is_some() {
                    return Err(GenError::Value {
                        key: "banks.seed".into(),
                        message: "only meaningful with banks.layers".into(),
                    });
                }
                BankSpec::Words(words)
            }
            (None, Some(sizes)) => BankSpec::Layers {
                sizes,
                seed: net_seed.unwrap_or(DEFAULT_NET_SEED),
            },
            (None, None) => {
                return Err(GenError::MissingKey {
                    key: "banks.words (or banks.layers)".into(),
                })
            }
        };

        let policy_name = take_string(&mut doc, "mix.policy")?.unwrap_or_else(|| "msb".into());
        let split = take_float(&mut doc, "mix.split")?;
        let per_bank = take_u8_array(&mut doc, "mix.msb_8t")?;
        let mix = match policy_name.as_str() {
            "uniform-6t" => {
                reject_extra(split.is_some(), "mix.split", "not used by uniform-6t")?;
                reject_extra(per_bank.is_some(), "mix.msb_8t", "not used by uniform-6t")?;
                MixPolicy::Uniform6T
            }
            "msb" => {
                reject_extra(per_bank.is_some(), "mix.msb_8t", "not used by msb")?;
                MixPolicy::Msb {
                    split: split.unwrap_or(0.375),
                }
            }
            "graded" => {
                reject_extra(per_bank.is_some(), "mix.msb_8t", "not used by graded")?;
                MixPolicy::Graded {
                    split: split.unwrap_or(0.375),
                }
            }
            "per-bank" => {
                reject_extra(split.is_some(), "mix.split", "not used by per-bank")?;
                MixPolicy::PerBank {
                    msb_8t: per_bank.ok_or(GenError::MissingKey {
                        key: "mix.msb_8t".into(),
                    })?,
                }
            }
            other => {
                return Err(GenError::Value {
                    key: "mix.policy".into(),
                    message: format!(
                        "unknown policy `{other}` (expected uniform-6t, msb, graded, per-bank)"
                    ),
                })
            }
        };

        let vdd = require_f(take_float(&mut doc, "supply.vdd")?, "supply.vdd")?;
        let drowsy = take_float(&mut doc, "supply.drowsy")?.unwrap_or(vdd);
        let ecc = take_bool(&mut doc, "ecc.enabled")?.unwrap_or(false);

        if let Some((key, line)) = doc.remaining().into_iter().next() {
            return Err(GenError::UnknownKey { key, line });
        }

        let spec = SramSpec {
            name,
            dims: SubArrayDims { rows, cols },
            mux,
            banks,
            mix,
            supply: SupplySpec { vdd, drowsy },
            ecc,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks every range and cross-field constraint.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed error.
    pub fn validate(&self) -> Result<(), GenError> {
        let SubArrayDims { rows, cols } = self.dims;
        if !(MIN_EDGE..=MAX_EDGE).contains(&rows) {
            return Err(geom(format!(
                "array.rows = {rows} outside [{MIN_EDGE}, {MAX_EDGE}]"
            )));
        }
        if !(MIN_EDGE..=MAX_EDGE).contains(&cols) {
            return Err(geom(format!(
                "array.cols = {cols} outside [{MIN_EDGE}, {MAX_EDGE}]"
            )));
        }
        if cols % 8 != 0 {
            return Err(geom(format!(
                "array.cols = {cols} must be a multiple of the 8-bit word"
            )));
        }
        if self.mux == 0 || !self.mux.is_power_of_two() || self.mux > MAX_MUX {
            return Err(geom(format!(
                "array.mux = {} must be a power of two in [1, {MAX_MUX}]",
                self.mux
            )));
        }
        if cols % (8 * self.mux) != 0 {
            return Err(geom(format!(
                "array.mux = {} does not divide the {cols}-column word groups (cols must be a \
                 multiple of 8*mux)",
                self.mux
            )));
        }
        let bank_words = self.bank_words()?;
        if bank_words.is_empty() || bank_words.len() > MAX_BANKS {
            return Err(geom(format!(
                "{} banks outside [1, {MAX_BANKS}]",
                bank_words.len()
            )));
        }
        let mut total: usize = 0;
        for (i, &w) in bank_words.iter().enumerate() {
            if w == 0 || w > MAX_BANK_WORDS {
                return Err(geom(format!(
                    "bank {i} holds {w} words, outside [1, {MAX_BANK_WORDS}]"
                )));
            }
            total = total
                .checked_add(w)
                .filter(|&t| t <= MAX_TOTAL_WORDS)
                .ok_or_else(|| geom(format!("total words exceed {MAX_TOTAL_WORDS}")))?;
        }
        match &self.mix {
            MixPolicy::Uniform6T => {}
            MixPolicy::Msb { split } | MixPolicy::Graded { split } => {
                if !split.is_finite() || !(0.0..=1.0).contains(split) {
                    return Err(GenError::Value {
                        key: "mix.split".into(),
                        message: format!("{split} outside [0, 1]"),
                    });
                }
            }
            MixPolicy::PerBank { msb_8t } => {
                if msb_8t.len() != bank_words.len() {
                    return Err(geom(format!(
                        "mix.msb_8t lists {} banks, spec has {}",
                        msb_8t.len(),
                        bank_words.len()
                    )));
                }
                if let Some(&n) = msb_8t.iter().find(|&&n| n > 8) {
                    return Err(GenError::Value {
                        key: "mix.msb_8t".into(),
                        message: format!("{n} protected bits exceed the 8-bit word"),
                    });
                }
            }
        }
        let SupplySpec { vdd, drowsy } = self.supply;
        if !vdd.is_finite() || !(VDD_RANGE.0..=VDD_RANGE.1).contains(&vdd) {
            return Err(GenError::Value {
                key: "supply.vdd".into(),
                message: format!("{vdd} outside [{}, {}]", VDD_RANGE.0, VDD_RANGE.1),
            });
        }
        if !drowsy.is_finite() || drowsy < DROWSY_MIN || drowsy > vdd {
            return Err(GenError::Value {
                key: "supply.drowsy".into(),
                message: format!("{drowsy} outside [{DROWSY_MIN}, vdd = {vdd}]"),
            });
        }
        Ok(())
    }

    /// Number of banks the spec describes.
    pub fn bank_count(&self) -> usize {
        match &self.banks {
            BankSpec::Words(words) => words.len(),
            BankSpec::Layers { sizes, .. } => sizes.len().saturating_sub(1),
        }
    }

    /// Per-bank word counts, computed with checked arithmetic.
    ///
    /// # Errors
    ///
    /// Returns a geometry error when a workload layer pair overflows the
    /// per-bank word cap (checked *before* any allocation of that size).
    pub fn bank_words(&self) -> Result<Vec<usize>, GenError> {
        match &self.banks {
            BankSpec::Words(words) => Ok(words.clone()),
            BankSpec::Layers { sizes, .. } => {
                if sizes.len() < 2 || sizes.len() > MAX_LAYERS {
                    return Err(geom(format!(
                        "banks.layers has {} entries, need 2..={MAX_LAYERS}",
                        sizes.len()
                    )));
                }
                if let Some(&w) = sizes.iter().find(|&&w| w == 0 || w > MAX_LAYER_WIDTH) {
                    return Err(geom(format!(
                        "layer width {w} outside [1, {MAX_LAYER_WIDTH}]"
                    )));
                }
                sizes
                    .windows(2)
                    .map(|pair| {
                        pair[0]
                            .checked_mul(pair[1])
                            .and_then(|w| w.checked_add(pair[1]))
                            .filter(|&w| w <= MAX_BANK_WORDS)
                            .ok_or_else(|| {
                                geom(format!(
                                    "layer pair {}x{} overflows the {MAX_BANK_WORDS}-word bank cap",
                                    pair[0], pair[1]
                                ))
                            })
                    })
                    .collect()
            }
        }
    }

    /// Canonical per-bank protected-MSB counts implied by the mix policy.
    pub fn msb_counts(&self) -> Vec<u8> {
        let banks = self.bank_count();
        match &self.mix {
            MixPolicy::Uniform6T => vec![0; banks],
            MixPolicy::Msb { split } => vec![round_msb(*split); banks],
            MixPolicy::Graded { split } => (0..banks)
                .map(|i| {
                    // Linear significance taper with the average pinned to
                    // `split`: weight 2*(B-i)/(B+1) sums to B over banks.
                    let w = 2.0 * (banks - i) as f64 / (banks + 1) as f64;
                    ((split * 8.0 * w).round() as i64).clamp(0, 8) as u8
                })
                .collect(),
            MixPolicy::PerBank { msb_8t } => msb_8t.clone(),
        }
    }

    /// The [`ProtectionPolicy`] the organization is built with.
    pub fn policy(&self) -> ProtectionPolicy {
        match &self.mix {
            MixPolicy::Uniform6T => ProtectionPolicy::Uniform6T,
            MixPolicy::Msb { split } => ProtectionPolicy::MsbProtected {
                msb_8t: round_msb(*split) as usize,
            },
            MixPolicy::Graded { .. } | MixPolicy::PerBank { .. } => ProtectionPolicy::PerBank {
                msb_8t: self.msb_counts().iter().map(|&n| n as usize).collect(),
            },
        }
    }

    /// Renders the spec back to canonical TOML (parsing the result yields
    /// an equal spec — property-tested).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name = \"{}\"\n\n[array]\n", escape(&self.name)));
        out.push_str(&format!(
            "rows = {}\ncols = {}\nmux = {}\n\n[banks]\n",
            self.dims.rows, self.dims.cols, self.mux
        ));
        match &self.banks {
            BankSpec::Words(words) => out.push_str(&format!("words = {}\n", int_list(words))),
            BankSpec::Layers { sizes, seed } => {
                out.push_str(&format!("layers = {}\nseed = {seed}\n", int_list(sizes)));
            }
        }
        out.push_str("\n[mix]\n");
        match &self.mix {
            MixPolicy::Uniform6T => out.push_str("policy = \"uniform-6t\"\n"),
            MixPolicy::Msb { split } => {
                out.push_str(&format!("policy = \"msb\"\nsplit = {split:?}\n"));
            }
            MixPolicy::Graded { split } => {
                out.push_str(&format!("policy = \"graded\"\nsplit = {split:?}\n"));
            }
            MixPolicy::PerBank { msb_8t } => {
                let list: Vec<usize> = msb_8t.iter().map(|&n| n as usize).collect();
                out.push_str(&format!(
                    "policy = \"per-bank\"\nmsb_8t = {}\n",
                    int_list(&list)
                ));
            }
        }
        out.push_str(&format!(
            "\n[supply]\nvdd = {:?}\ndrowsy = {:?}\n\n[ecc]\nenabled = {}\n",
            self.supply.vdd, self.supply.drowsy, self.ecc
        ));
        out
    }

    /// Draws a random valid spec from the design space (seeded, so the
    /// sweep's sample is reproducible). Sampled specs always use a
    /// workload topology, so every one supports the inference smoke.
    pub fn sample(seed: u64) -> SramSpec {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = [64usize, 128, 256];
        let rows = edges[rng.gen_range(0..edges.len())];
        let cols = edges[rng.gen_range(0..edges.len())];
        let mux = [1usize, 2, 4, 8][rng.gen_range(0..4)];
        let mut sizes = vec![rng.gen_range(8..=24)];
        for _ in 0..rng.gen_range(1..=2) {
            sizes.push(rng.gen_range(4..=16));
        }
        sizes.push(rng.gen_range(2..=8));
        let split = rng.gen_range(1..=5) as f64 / 8.0;
        let banks = sizes.len() - 1;
        let mix = match rng.gen_range(0..6) {
            0 => MixPolicy::Uniform6T,
            1 | 2 => MixPolicy::Msb { split },
            3 | 4 => MixPolicy::Graded { split },
            _ => MixPolicy::PerBank {
                msb_8t: (0..banks).map(|_| rng.gen_range(0..=8) as u8).collect(),
            },
        };
        let vdd = 0.60 + 0.05 * rng.gen_range(0..=6) as f64;
        let drowsy_steps = ((vdd - DROWSY_MIN) / 0.05).round() as i64;
        // `min(vdd)` guards the float-ulp case where the last step lands an
        // ulp above the rail (0.3 + 0.05*6 > 0.6).
        let drowsy = (DROWSY_MIN + 0.05 * rng.gen_range(0..=drowsy_steps.max(0)) as f64).min(vdd);
        let spec = SramSpec {
            name: format!("rand-{seed:08x}"),
            dims: SubArrayDims { rows, cols },
            mux,
            banks: BankSpec::Layers {
                sizes,
                seed: rng.gen_range(1..1 << 20),
            },
            mix,
            supply: SupplySpec { vdd, drowsy },
            ecc: rng.gen_bool(0.3),
        };
        debug_assert!(spec.validate().is_ok());
        spec
    }
}

/// Rounds a bit fraction to a protected-MSB count.
fn round_msb(split: f64) -> u8 {
    ((split * 8.0).round() as i64).clamp(0, 8) as u8
}

fn geom(message: String) -> GenError {
    GenError::Geometry { message }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn int_list(values: &[usize]) -> String {
    let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn require(v: Option<usize>, key: &str) -> Result<usize, GenError> {
    v.ok_or_else(|| GenError::MissingKey { key: key.into() })
}

fn require_f(v: Option<f64>, key: &str) -> Result<f64, GenError> {
    v.ok_or_else(|| GenError::MissingKey { key: key.into() })
}

fn reject_extra(present: bool, key: &str, message: &str) -> Result<(), GenError> {
    if present {
        return Err(GenError::Value {
            key: key.into(),
            message: message.into(),
        });
    }
    Ok(())
}

fn value_err(key: &str, message: impl Into<String>) -> GenError {
    GenError::Value {
        key: key.into(),
        message: message.into(),
    }
}

fn take_string(doc: &mut Document, key: &str) -> Result<Option<String>, GenError> {
    match doc.take(key) {
        None => Ok(None),
        Some((Value::Str(s), _)) => Ok(Some(s)),
        Some((other, _)) => Err(value_err(
            key,
            format!("expected a string, found {}", other.type_name()),
        )),
    }
}

fn take_bool(doc: &mut Document, key: &str) -> Result<Option<bool>, GenError> {
    match doc.take(key) {
        None => Ok(None),
        Some((Value::Bool(b), _)) => Ok(Some(b)),
        Some((other, _)) => Err(value_err(
            key,
            format!("expected a boolean, found {}", other.type_name()),
        )),
    }
}

fn take_float(doc: &mut Document, key: &str) -> Result<Option<f64>, GenError> {
    match doc.take(key) {
        None => Ok(None),
        Some((Value::Float(f), _)) => Ok(Some(f)),
        Some((Value::Int(i), _)) => Ok(Some(i as f64)),
        Some((other, _)) => Err(value_err(
            key,
            format!("expected a number, found {}", other.type_name()),
        )),
    }
}

fn int_to_usize(key: &str, i: i64) -> Result<usize, GenError> {
    usize::try_from(i).map_err(|_| value_err(key, format!("{i} is negative")))
}

fn take_usize(doc: &mut Document, key: &str) -> Result<Option<usize>, GenError> {
    match doc.take(key) {
        None => Ok(None),
        Some((Value::Int(i), _)) => int_to_usize(key, i).map(Some),
        Some((other, _)) => Err(value_err(
            key,
            format!("expected an integer, found {}", other.type_name()),
        )),
    }
}

fn take_u64(doc: &mut Document, key: &str) -> Result<Option<u64>, GenError> {
    match doc.take(key) {
        None => Ok(None),
        Some((Value::Int(i), _)) => u64::try_from(i)
            .map(Some)
            .map_err(|_| value_err(key, format!("{i} is negative"))),
        Some((other, _)) => Err(value_err(
            key,
            format!("expected an integer, found {}", other.type_name()),
        )),
    }
}

fn take_usize_array(doc: &mut Document, key: &str) -> Result<Option<Vec<usize>>, GenError> {
    match doc.take(key) {
        None => Ok(None),
        Some((Value::Array(items), _)) => items
            .into_iter()
            .map(|item| match item {
                Value::Int(i) => int_to_usize(key, i),
                other => Err(value_err(
                    key,
                    format!("expected integer elements, found {}", other.type_name()),
                )),
            })
            .collect::<Result<Vec<usize>, GenError>>()
            .map(Some),
        Some((other, _)) => Err(value_err(
            key,
            format!("expected an array, found {}", other.type_name()),
        )),
    }
}

fn take_u8_array(doc: &mut Document, key: &str) -> Result<Option<Vec<u8>>, GenError> {
    match take_usize_array(doc, key)? {
        None => Ok(None),
        Some(items) => items
            .into_iter()
            .map(|n| u8::try_from(n).map_err(|_| value_err(key, format!("{n} exceeds a byte"))))
            .collect::<Result<Vec<u8>, GenError>>()
            .map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_digits_spec_parses() {
        let spec = SramSpec::from_toml_str(
            "name = \"digits\"\n[array]\nrows = 256\ncols = 256\nmux = 8\n\
             [banks]\nlayers = [784, 24, 10]\nseed = 5\n\
             [mix]\npolicy = \"msb\"\nsplit = 0.375\n\
             [supply]\nvdd = 0.7\ndrowsy = 0.45\n[ecc]\nenabled = false\n",
        )
        .expect("valid");
        assert_eq!(spec.dims, SubArrayDims::PAPER);
        assert_eq!(
            spec.bank_words().unwrap(),
            vec![784 * 24 + 24, 24 * 10 + 10]
        );
        assert_eq!(spec.policy(), ProtectionPolicy::MsbProtected { msb_8t: 3 });
    }

    #[test]
    fn graded_counts_average_to_split_and_taper() {
        let spec = SramSpec {
            mix: MixPolicy::Graded { split: 0.5 },
            ..SramSpec::sample(1)
        };
        let counts = spec.msb_counts();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{counts:?}");
        let avg = counts.iter().map(|&c| c as f64).sum::<f64>() / counts.len() as f64;
        assert!((avg - 4.0).abs() <= 1.0, "{counts:?}");
    }

    #[test]
    fn sampled_specs_round_trip_through_toml() {
        for seed in 0..32 {
            let spec = SramSpec::sample(seed);
            let back = SramSpec::from_toml_str(&spec.to_toml())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", spec.to_toml()));
            assert_eq!(spec, back, "seed {seed}");
        }
    }

    #[test]
    fn overflow_rows_are_rejected_without_allocation() {
        let err = SramSpec::from_toml_str(
            "[array]\nrows = 4611686018427387904\ncols = 256\n[banks]\nwords = [10]\n\
             [supply]\nvdd = 0.7\n",
        )
        .expect_err("must reject");
        assert!(matches!(err, GenError::Geometry { .. }), "{err}");
    }
}
