//! A minimal, total TOML-subset parser.
//!
//! The build environment is offline (see `shims/README.md`), so the spec
//! front end cannot pull a TOML crate; it parses the subset the spec schema
//! needs by hand: `[section]` headers, `key = value` pairs with integer,
//! float, boolean, string, and single-line array values, and `#` comments.
//! Unsupported TOML (nested tables, inline tables, multi-line arrays,
//! array-of-tables) is rejected with a typed [`GenError::Parse`] carrying
//! the line number — never a panic.
//!
//! The parser stores only scalars: nothing here allocates proportionally
//! to any *claimed* size in the document, which is what lets the spec
//! layer range-check hostile values (e.g. `rows = 9000000000`) before any
//! geometry-sized buffer exists.

use crate::error::GenError;
use std::collections::BTreeMap;

/// Maximum array nesting depth the value grammar accepts.
const MAX_DEPTH: usize = 3;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer literal (anything that fits an `i64`; larger literals
    /// parse as floats and then fail integer-typed key lookups).
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Basic (double-quoted) string.
    Str(String),
    /// Single-line array.
    Array(Vec<Value>),
}

impl Value {
    /// Human name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
        }
    }
}

/// A flat view of a parsed document: dotted key path → (value, line).
#[derive(Debug, Default)]
pub struct Document {
    entries: BTreeMap<String, (Value, usize)>,
}

impl Document {
    /// Parses `text` into a flat key map.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Parse`] on any syntax the subset does not
    /// accept, including duplicate keys and truncated constructs.
    pub fn parse(text: &str) -> Result<Self, GenError> {
        let mut doc = Document::default();
        let mut prefix = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let stripped = strip_comment(raw, line)?;
            let trimmed = stripped.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix('[') {
                if rest.starts_with('[') {
                    return Err(parse_err(line, "array-of-tables is not supported"));
                }
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| parse_err(line, "unterminated section header"))?
                    .trim();
                if !is_bare_key(name) {
                    return Err(parse_err(
                        line,
                        format!("invalid section name `{name}` (nested tables unsupported)"),
                    ));
                }
                prefix = name.to_string();
                continue;
            }
            let (key, value_text) = trimmed
                .split_once('=')
                .ok_or_else(|| parse_err(line, "expected `key = value` or `[section]`"))?;
            let key = key.trim();
            if !is_bare_key(key) {
                return Err(parse_err(line, format!("invalid key `{key}`")));
            }
            let value = parse_value(value_text.trim(), line, 0)?;
            let full = if prefix.is_empty() {
                key.to_string()
            } else {
                format!("{prefix}.{key}")
            };
            if doc.entries.insert(full.clone(), (value, line)).is_some() {
                return Err(parse_err(line, format!("duplicate key `{full}`")));
            }
        }
        Ok(doc)
    }

    /// Removes and returns the entry at `key`, if present.
    pub fn take(&mut self, key: &str) -> Option<(Value, usize)> {
        self.entries.remove(key)
    }

    /// Keys that were never consumed, with their line numbers (ordered by
    /// line so the first surplus key in the file is reported first).
    pub fn remaining(&self) -> Vec<(String, usize)> {
        let mut keys: Vec<(String, usize)> = self
            .entries
            .iter()
            .map(|(k, (_, line))| (k.clone(), *line))
            .collect();
        keys.sort_by_key(|(_, line)| *line);
        keys
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> GenError {
    GenError::Parse {
        line,
        message: message.into(),
    }
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Cuts a trailing `#` comment, honoring `#` inside string literals.
fn strip_comment(raw: &str, line: usize) -> Result<String, GenError> {
    let mut out = String::new();
    let mut in_string = false;
    let mut escaped = false;
    for c in raw.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '#' => return Ok(out),
            '"' => {
                in_string = true;
                out.push(c);
            }
            _ => out.push(c),
        }
    }
    if in_string {
        return Err(parse_err(line, "unterminated string"));
    }
    Ok(out)
}

fn parse_value(s: &str, line: usize, depth: usize) -> Result<Value, GenError> {
    if s.is_empty() {
        return Err(parse_err(line, "missing value after `=`"));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if s.starts_with('"') {
        return parse_string(s, line);
    }
    if s.starts_with('[') {
        if depth >= MAX_DEPTH {
            return Err(parse_err(line, "arrays nested too deeply"));
        }
        return parse_array(s, line, depth);
    }
    if s.starts_with('{') {
        return Err(parse_err(line, "inline tables are not supported"));
    }
    parse_number(s, line)
}

fn parse_string(s: &str, line: usize) -> Result<Value, GenError> {
    let mut out = String::new();
    let mut chars = s.chars();
    if chars.next() != Some('"') {
        return Err(parse_err(line, "expected string"));
    }
    loop {
        match chars.next() {
            None => return Err(parse_err(line, "unterminated string")),
            Some('"') => break,
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    return Err(parse_err(line, format!("unsupported escape `\\{other}`")))
                }
                None => return Err(parse_err(line, "unterminated string escape")),
            },
            Some(c) => out.push(c),
        }
    }
    let rest: String = chars.collect();
    if !rest.trim().is_empty() {
        return Err(parse_err(
            line,
            format!("unexpected trailing text `{}` after string", rest.trim()),
        ));
    }
    Ok(Value::Str(out))
}

fn parse_array(s: &str, line: usize, depth: usize) -> Result<Value, GenError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| parse_err(line, "unterminated array (arrays must be single-line)"))?;
    let mut elements = Vec::new();
    for part in split_top_level(inner, line)? {
        let part = part.trim();
        if part.is_empty() {
            return Err(parse_err(line, "empty array element"));
        }
        elements.push(parse_value(part, line, depth + 1)?);
    }
    Ok(Value::Array(elements))
}

/// Splits `inner` on commas outside brackets and strings; a trailing comma
/// is allowed (TOML permits it).
fn split_top_level(inner: &str, line: usize) -> Result<Vec<String>, GenError> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut bracket_depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for c in inner.chars() {
        if in_string {
            current.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                current.push(c);
            }
            '[' => {
                bracket_depth += 1;
                current.push(c);
            }
            ']' => {
                bracket_depth = bracket_depth
                    .checked_sub(1)
                    .ok_or_else(|| parse_err(line, "unbalanced `]` in array"))?;
                current.push(c);
            }
            ',' if bracket_depth == 0 => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if bracket_depth != 0 || in_string {
        return Err(parse_err(line, "unterminated array element"));
    }
    // Empty tail = trailing comma (or empty array): nothing to push.
    if !current.trim().is_empty() {
        parts.push(current);
    }
    Ok(parts)
}

fn parse_number(s: &str, line: usize) -> Result<Value, GenError> {
    if s.contains('_') {
        return Err(parse_err(
            line,
            "underscore digit separators are not supported",
        ));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = s.parse::<f64>() {
        if f.is_finite()
            && !s.eq_ignore_ascii_case("nan")
            && !s.to_ascii_lowercase().contains("inf")
        {
            return Ok(Value::Float(f));
        }
        return Err(parse_err(line, format!("non-finite number `{s}`")));
    }
    Err(parse_err(line, format!("unparseable value `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let mut doc = Document::parse(
            "name = \"demo\"\n# comment\n[array]\nrows = 256 # trailing\ncols = 128\n\
             [banks]\nlayers = [784, 24, 10]\n[supply]\nvdd = 0.7\nok = true\n",
        )
        .expect("parses");
        assert_eq!(
            doc.take("name").map(|(v, _)| v),
            Some(Value::Str("demo".into()))
        );
        assert_eq!(
            doc.take("array.rows").map(|(v, _)| v),
            Some(Value::Int(256))
        );
        assert_eq!(
            doc.take("array.cols").map(|(v, _)| v),
            Some(Value::Int(128))
        );
        assert_eq!(
            doc.take("banks.layers").map(|(v, _)| v),
            Some(Value::Array(vec![
                Value::Int(784),
                Value::Int(24),
                Value::Int(10)
            ]))
        );
        assert_eq!(
            doc.take("supply.vdd").map(|(v, _)| v),
            Some(Value::Float(0.7))
        );
        assert_eq!(
            doc.take("supply.ok").map(|(v, _)| v),
            Some(Value::Bool(true))
        );
        assert!(doc.remaining().is_empty());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let mut doc = Document::parse("name = \"a#b\"\n").expect("parses");
        assert_eq!(
            doc.take("name").map(|(v, _)| v),
            Some(Value::Str("a#b".into()))
        );
    }

    #[test]
    fn oversized_integer_literal_becomes_a_float_not_a_panic() {
        let mut doc = Document::parse("rows = 99999999999999999999999\n").expect("parses");
        assert!(matches!(doc.take("rows"), Some((Value::Float(_), _))));
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        for (text, needle) in [
            ("[array\nrows = 1\n", "unterminated section"),
            ("x = \"abc\n", "unterminated string"),
            ("x = [1, 2\n", "unterminated array"),
            ("x = {a = 1}\n", "inline tables"),
            ("x = nan\n", "non-finite"),
            ("x = \n", "missing value"),
            ("x = 1\nx = 2\n", "duplicate key"),
            ("[[t]]\n", "array-of-tables"),
            ("just words\n", "expected `key = value`"),
        ] {
            match Document::parse(text) {
                Err(GenError::Parse { line, message }) => {
                    assert!(line >= 1, "{text:?}");
                    assert!(message.contains(needle), "{text:?} -> {message}");
                }
                other => panic!("{text:?} should fail to parse, got {other:?}"),
            }
        }
    }
}
