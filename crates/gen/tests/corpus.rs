//! Negative-path corpus (issue satellite): every malformed or hostile spec
//! under `corpus/` must produce a *typed* error — never a panic — and the
//! front end must reject claimed-size attacks before allocating anything
//! proportional to the claim.

use sram_gen::error::GenError;
use sram_gen::spec::SramSpec;
use std::path::PathBuf;
use std::time::Instant;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir exists")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_corpus_file_is_rejected_with_a_typed_error() {
    let files = corpus_files();
    assert!(
        files.len() >= 8,
        "corpus should stay adversarial: {files:?}"
    );
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        match SramSpec::from_toml_str(&text) {
            Err(err) => {
                // Force the typed surface: Display must render without
                // panicking and the error must be one of the public kinds.
                let rendered = err.to_string();
                assert!(!rendered.is_empty(), "{path:?}");
            }
            Ok(spec) => panic!("{path:?} must be rejected, parsed as {spec:?}"),
        }
    }
}

/// A corpus file name paired with the error-kind predicate it must trip.
type ExpectedKind = (&'static str, fn(&GenError) -> bool);

#[test]
fn corpus_files_map_to_the_expected_error_kinds() {
    let expect: &[ExpectedKind] = &[
        ("overflow-geometry.toml", |e| {
            matches!(e, GenError::Geometry { .. } | GenError::Value { .. })
        }),
        ("zero-banks.toml", |e| {
            matches!(e, GenError::Geometry { .. })
        }),
        ("split-above-one.toml", |e| {
            matches!(e, GenError::Value { .. })
        }),
        (
            "unknown-key.toml",
            |e| matches!(e, GenError::UnknownKey { key, .. } if key.contains("colums")),
        ),
        ("truncated.toml", |e| matches!(e, GenError::Parse { .. })),
        ("negative-rows.toml", |e| {
            matches!(e, GenError::Value { .. })
        }),
        ("bad-mux.toml", |e| matches!(e, GenError::Geometry { .. })),
        ("drowsy-above-vdd.toml", |e| {
            matches!(e, GenError::Value { .. })
        }),
        ("overflow-layers.toml", |e| {
            matches!(e, GenError::Geometry { .. })
        }),
        (
            "missing-supply.toml",
            |e| matches!(e, GenError::MissingKey { key } if key.contains("vdd")),
        ),
    ];
    for (name, matches_kind) in expect {
        let path = corpus_dir().join(name);
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let err = SramSpec::from_toml_str(&text).expect_err(name);
        assert!(matches_kind(&err), "{name}: unexpected error {err:?}");
    }
}

#[test]
fn hostile_claimed_sizes_are_rejected_before_any_allocation() {
    // Specs that *claim* petaword geometries must be range-checked from
    // scalar values alone. A front end that sized buffers from the claim
    // would OOM or stall; typed rejection must be near-instant.
    let hostile = [
        "[array]\nrows = 4611686018427387904\ncols = 256\n[banks]\nwords = [8]\n[supply]\nvdd = 0.7\n",
        "[array]\nrows = 256\ncols = 256\n[banks]\nwords = [4611686018427387904, 4611686018427387904]\n[supply]\nvdd = 0.7\n",
        "[array]\nrows = 256\ncols = 256\n[banks]\nlayers = [4096, 4096, 4096, 4096, 4096, 4096]\n[supply]\nvdd = 0.7\n",
        "[array]\nrows = 999999999999999999\ncols = 999999999999999999\n[banks]\nwords = [999999999999999999]\n[supply]\nvdd = 0.7\n",
    ];
    let start = Instant::now();
    for text in hostile {
        let err = SramSpec::from_toml_str(text).expect_err("hostile claim must be rejected");
        assert!(
            matches!(err, GenError::Geometry { .. } | GenError::Value { .. }),
            "unexpected error for hostile claim: {err:?}"
        );
    }
    // Generous even for a debug build under load; a geometry-sized
    // allocation of 2^62 words would never come back at all.
    assert!(
        start.elapsed().as_secs() < 5,
        "hostile claims took {:?} — validation is allocating?",
        start.elapsed()
    );
}

#[test]
fn truncated_prefixes_of_a_valid_spec_never_panic() {
    // Every byte-prefix of a committed spec is either valid (only once the
    // file is complete enough) or a typed error — exercised to make sure
    // mid-token truncation can't panic the parser.
    let full = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("specs/digits.toml"),
    )
    .expect("committed spec readable");
    for end in 0..=full.len() {
        if !full.is_char_boundary(end) {
            continue;
        }
        let _ = SramSpec::from_toml_str(&full[..end]);
    }
}
