//! Golden equivalence (issue satellite): the committed `digits.toml` spec —
//! a transcription of the paper's hand-wired trained-digits fixture — must
//! generate a byte-identical layout and identical characterization values
//! to the fixture path the serving benches use. The generator is a front
//! end, not a second implementation: same organization, same solver
//! numbers.

use fault_inject::protection::ProtectionPolicy;
use neuro_system::layout;
use sram_array::organization::{SubArrayDims, SynapticMemoryMap};
use sram_bitcell::characterize::characterize_paper_cells_cached;
use sram_bitcell::margins::write_margin;
use sram_bitcell::snm::{static_noise_margin, SnmCondition};
use sram_bitcell::timing::{read_access_time_6t, write_time};
use sram_device::process::Technology;
use sram_device::units::Volt;
use sram_gen::characterize::{characterize, column_env, mc_options, mc_tables, CharacterizeConfig};
use sram_gen::organize::{layout_digest, GeneratedOrganization};
use sram_gen::spec::SramSpec;

const DIGITS_SPEC: &str = include_str!("../specs/digits.toml");

fn digits_spec() -> SramSpec {
    SramSpec::from_toml_str(DIGITS_SPEC).expect("committed digits spec parses")
}

fn hand_wired_map() -> SynapticMemoryMap {
    let (digits_q, _) = sram_serve::fixture::trained_digit_network();
    SynapticMemoryMap::new(
        &layout::bank_words(&digits_q),
        &ProtectionPolicy::MsbProtected { msb_8t: 3 },
        SubArrayDims::PAPER,
    )
}

#[test]
fn digits_spec_layout_is_byte_identical_to_the_hand_wired_fixture() {
    let org = GeneratedOrganization::build(&digits_spec()).expect("digits spec builds");
    let fixture = hand_wired_map();
    // Structural equality first (clearer failures)...
    assert_eq!(org.map, fixture);
    // ...then the digest the sweep gate actually compares.
    assert_eq!(layout_digest(&org.map), layout_digest(&fixture));
    // The generated workload is the fixture network itself: identical
    // per-bank word counts by construction.
    let network = org
        .network
        .as_ref()
        .expect("digits spec carries a workload");
    assert_eq!(
        layout::bank_words(network),
        org.map.banks().iter().map(|b| b.words).collect::<Vec<_>>()
    );
}

#[test]
fn digits_spec_characterization_matches_the_direct_solver_path() {
    let spec = digits_spec();
    let cfg = CharacterizeConfig { mc_samples: 48 };
    let tech = Technology::ptm_22nm();

    // The Monte-Carlo tables the generator uses come out of the same
    // process-wide cache the direct path hits for identical options:
    // value-identical tables, down to every sampled failure rate.
    let (gen_6t, gen_8t) = mc_tables(&spec, &cfg);
    let (direct_6t, direct_8t) = characterize_paper_cells_cached(&tech, &mc_options(&spec, &cfg));
    assert_eq!(gen_6t, direct_6t);
    assert_eq!(gen_8t, direct_8t);

    // And the deterministic solver numbers in the report are bit-identical
    // to calling the solvers directly at the spec's operating points.
    let characterization = characterize(&spec, &cfg);
    let (cell6, _) = sram_bitcell::characterize::paper_cells(&tech);
    let vdd = Volt::new(spec.supply.vdd);
    let env = column_env(spec.dims.rows);

    let active = &characterization.active;
    assert_eq!(active.vdd, spec.supply.vdd);
    assert_eq!(
        active.write_margin_v,
        write_margin(&cell6, vdd).as_volts().volts()
    );
    assert_eq!(
        active.hold_snm_v,
        static_noise_margin(&cell6, vdd, SnmCondition::Hold).volts()
    );
    assert_eq!(
        active.read_snm_v,
        static_noise_margin(&cell6, vdd, SnmCondition::Read).volts()
    );
    assert_eq!(
        active.write_time_s,
        write_time(&cell6, vdd).map(|t| t.seconds())
    );
    assert_eq!(
        active.read_6t_s,
        read_access_time_6t(&cell6, vdd, &env).map(|t| t.seconds())
    );

    // The drowsy point is the spec's drowsy rail, not a resample.
    assert_eq!(characterization.drowsy.vdd, spec.supply.drowsy);
}

#[test]
fn digits_characterization_is_stable_across_rebuilds() {
    // Two independent builds of the same committed spec must agree on
    // every folded observable — the property the xtask gate relies on
    // when it diffs reports across worker counts.
    let spec = digits_spec();
    let cfg = CharacterizeConfig { mc_samples: 48 };
    let a = characterize(&spec, &cfg);
    let b = characterize(&spec, &cfg);
    let fold = |c: &sram_gen::characterize::GenCharacterization| {
        c.drowsy
            .fold_digest(c.active.fold_digest(0xcbf2_9ce4_8422_2325))
    };
    assert_eq!(fold(&a), fold(&b));
}
