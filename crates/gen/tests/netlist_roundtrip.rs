//! Netlist round-trip (issue satellite): the decks the generator emits are
//! real SPICE — they parse back through `nanospice::parser`, their DC
//! operating points solve, and the solved storage node agrees with the
//! behavioral cell model evaluated at the same voltages.

use nanospice::dc::DcSolver;
use nanospice::parser::parse_deck;
use sram_array::organization::SubArrayDims;
use sram_bitcell::cell_ops::qb_equilibrium;
use sram_bitcell::characterize::paper_cells;
use sram_bitcell::netlists::nodes;
use sram_device::process::Technology;
use sram_device::units::Volt;
use sram_gen::netlist::emit;
use sram_gen::spec::{BankSpec, MixPolicy, SramSpec, SupplySpec};

fn small_spec(vdd: f64) -> SramSpec {
    let spec = SramSpec {
        name: "roundtrip".into(),
        dims: SubArrayDims { rows: 64, cols: 64 },
        mux: 2,
        banks: BankSpec::Words(vec![256, 64]),
        mix: MixPolicy::Msb { split: 0.375 },
        supply: SupplySpec { vdd, drowsy: vdd },
        ecc: false,
    };
    spec.validate().expect("test spec is valid");
    spec
}

#[test]
fn emitted_six_t_deck_parses_solves_and_matches_the_behavioral_model() {
    let vdd = 0.8;
    let decks = emit(&small_spec(vdd)).expect("emit");
    let tech = Technology::ptm_22nm();
    let deck = parse_deck(&decks.six_t, &tech).expect("emitted 6T deck parses back");
    assert!(deck.title.contains("roundtrip"));
    assert!(deck.title.contains("64x64"));

    let ckt = &deck.circuit;
    let q = ckt.find_node(nodes::Q).expect("Q survives the round trip");
    let qb = ckt
        .find_node(nodes::QB)
        .expect("QB survives the round trip");
    // The spec-scaled bitline loads must survive the round trip too.
    assert!(ckt.element("CBL").is_some() && ckt.element("CBLB").is_some());

    let (cell6, _) = paper_cells(&tech);
    for (q_guess, qb_guess) in [(vdd, 0.0), (0.0, vdd)] {
        let op = DcSolver::new(ckt)
            .guess(q, Volt::new(q_guess))
            .guess(qb, Volt::new(qb_guess))
            .solve()
            .expect("hold operating point solves");
        let q_v = op.voltage(q).volts();
        let qb_v = op.voltage(qb).volts();
        // Bistable hold states near the rails.
        assert!(
            (q_v - q_guess).abs() < 0.05,
            "Q = {q_v} from guess {q_guess}"
        );
        assert!(
            (qb_v - qb_guess).abs() < 0.05,
            "QB = {qb_v} from guess {qb_guess}"
        );
        // Cross-check: the behavioral model's QB equilibrium for the solved
        // Q (wordline off in hold, so no bitline term) agrees with SPICE.
        let qb_behavioral = qb_equilibrium(&cell6, q_v, vdd, 0.0, None);
        assert!(
            (qb_behavioral - qb_v).abs() < 0.05,
            "behavioral QB {qb_behavioral} vs SPICE QB {qb_v} at Q = {q_v}"
        );
    }
}

#[test]
fn emitted_eight_t_deck_parses_and_holds_with_the_read_port_off() {
    let vdd = 0.7;
    let decks = emit(&small_spec(vdd)).expect("emit");
    let tech = Technology::ptm_22nm();
    let deck = parse_deck(&decks.eight_t, &tech).expect("emitted 8T deck parses back");

    let ckt = &deck.circuit;
    let q = ckt.find_node(nodes::Q).expect("node");
    let qb = ckt.find_node(nodes::QB).expect("node");
    let rwl = ckt
        .find_node(nodes::RWL)
        .expect("read wordline round-trips");
    let op = DcSolver::new(ckt)
        .guess(q, Volt::new(vdd))
        .guess(qb, Volt::new(0.0))
        .solve()
        .expect("8T hold operating point solves");
    assert!(op.voltage(q).volts() > vdd - 0.05);
    assert!(op.voltage(qb).volts() < 0.05);
    // The generator grounds the read wordline (hold): the source card must
    // have round-tripped as 0 V.
    assert!(op.voltage(rwl).volts().abs() < 1e-9);
}

#[test]
fn deck_scales_bitline_load_with_spec_rows() {
    // Two specs differing only in rows emit different CBL values: the deck
    // carries the spec's geometry, not a fixed template.
    let mut tall = small_spec(0.8);
    tall.dims = SubArrayDims {
        rows: 256,
        cols: 64,
    };
    let short = emit(&small_spec(0.8)).expect("emit");
    let taller = emit(&tall).expect("emit");
    assert_ne!(short.six_t, taller.six_t);
    let tech = Technology::ptm_22nm();
    for text in [&short.six_t, &taller.six_t] {
        parse_deck(text, &tech).expect("both decks stay parseable");
    }
}
