//! Property tests over arbitrary valid specs (issue satellite).
//!
//! The generator's output — a [`SynapticMemoryMap`] plus per-bank cell
//! assignments — must satisfy structural invariants for *any* point in the
//! spec space, not just the committed configs. The spec space is explored
//! through [`SramSpec::sample`], the same seeded sampler the design-space
//! sweep gate uses, so every seed here is a spec the gate could draw.

use proptest::prelude::*;
use sram_array::organization::{SynapticMemoryMap, WordAddress};
use sram_bitcell::topology::BitcellKind;
use sram_gen::organize::{layout_digest, GeneratedOrganization};
use sram_gen::spec::{MixPolicy, SramSpec};

/// Seeds covering the sampled spec space.
fn arb_seed() -> impl Strategy<Value = u64> {
    0u64..1_000_000
}

proptest! {
    /// `locate` and `global_index` are inverse bijections over the whole
    /// generated memory, and every located address is in range.
    #[test]
    fn locate_global_index_round_trip(seed in arb_seed(), probe in 0usize..1 << 22) {
        let spec = SramSpec::sample(seed);
        let org = GeneratedOrganization::build(&spec).expect("sampled specs build");
        let total = org.map.total_words();
        prop_assert!(total > 0);
        let global = probe % total;
        let addr = org.map.locate(global);
        prop_assert!(addr.bank < org.map.banks().len());
        prop_assert!(addr.offset < org.map.banks()[addr.bank].words);
        prop_assert_eq!(org.map.global_index(addr), global);
        // And the other direction: bank starts map back to themselves.
        let first = WordAddress { bank: addr.bank, offset: 0 };
        prop_assert_eq!(org.map.locate(org.map.global_index(first)), first);
    }

    /// Per-bank cell accounting: every word is 8 bits, each bit is exactly
    /// one of 8T or 6T, and the bank totals sum to the map totals.
    #[test]
    fn per_bank_cell_accounting(seed in arb_seed()) {
        let spec = SramSpec::sample(seed);
        let org = GeneratedOrganization::build(&spec).expect("sampled specs build");
        let mut sum_8t = 0usize;
        let mut sum_6t = 0usize;
        for bank in org.map.banks() {
            prop_assert_eq!(bank.cells_8t() + bank.cells_6t(), bank.words * 8);
            prop_assert_eq!(bank.cells_8t(), bank.words * bank.assignment.protected_count());
            sum_8t += bank.cells_8t();
            sum_6t += bank.cells_6t();
        }
        prop_assert_eq!(org.map.total_cells(BitcellKind::EightT), sum_8t);
        prop_assert_eq!(org.map.total_cells(BitcellKind::SixT), sum_6t);
        prop_assert_eq!(sum_8t + sum_6t, org.map.total_words() * 8);
    }

    /// For the `msb` policy the per-bank 8T share lands within one word's
    /// worth of bits (i.e. half-a-bit-per-word rounding) of the spec
    /// fraction, for any split and any sampled geometry.
    #[test]
    fn msb_split_within_one_word_rounding(seed in arb_seed(), eighths in 0u32..=8) {
        let split = f64::from(eighths) / 8.0;
        let mut spec = SramSpec::sample(seed);
        spec.mix = MixPolicy::Msb { split };
        spec.validate().expect("msb split in [0, 1] is valid");
        let org = GeneratedOrganization::build(&spec).expect("builds");
        for bank in org.map.banks() {
            let ideal = split * (bank.words * 8) as f64;
            let actual = bank.cells_8t() as f64;
            // round(split * 8) perturbs each word by at most half a bit.
            prop_assert!(
                (actual - ideal).abs() <= 0.5 * bank.words as f64 + 1e-9,
                "split {} bank {} words: ideal {} actual {}",
                split,
                bank.words,
                ideal,
                actual
            );
        }
    }

    /// The graded policy tapers monotonically from the first (input-side)
    /// bank and never protects more than a whole word.
    #[test]
    fn graded_policy_tapers_monotonically(seed in arb_seed(), eighths in 0u32..=8) {
        let mut spec = SramSpec::sample(seed);
        spec.mix = MixPolicy::Graded { split: f64::from(eighths) / 8.0 };
        spec.validate().expect("graded split in [0, 1] is valid");
        let counts = spec.msb_counts();
        prop_assert_eq!(counts.len(), spec.bank_count());
        for pair in counts.windows(2) {
            prop_assert!(pair[0] >= pair[1], "graded counts must taper: {counts:?}");
        }
        for &c in &counts {
            prop_assert!(c <= 8);
        }
    }

    /// `concat` of two generated tenants preserves each tenant's bank
    /// sizes and per-bank cell assignments, in order, and the combined
    /// address space is the disjoint union of the two.
    #[test]
    fn concat_preserves_per_bank_assignments(seed_a in arb_seed(), seed_b in arb_seed()) {
        let spec_a = SramSpec::sample(seed_a);
        let mut spec_b = SramSpec::sample(seed_b);
        // Tenants share one physical array; pin both to the same dims/mux
        // the way the serving registry does.
        spec_b.dims = spec_a.dims;
        spec_b.mux = spec_a.mux;
        let a = GeneratedOrganization::build(&spec_a).expect("builds");
        let b = GeneratedOrganization::build(&spec_b).expect("builds");
        let joined = SynapticMemoryMap::concat([a.map.clone(), b.map.clone()]);

        prop_assert_eq!(joined.banks().len(), a.map.banks().len() + b.map.banks().len());
        for (i, bank) in joined.banks().iter().enumerate() {
            let source = if i < a.map.banks().len() {
                &a.map.banks()[i]
            } else {
                &b.map.banks()[i - a.map.banks().len()]
            };
            prop_assert_eq!(bank.words, source.words);
            prop_assert_eq!(bank.assignment.mask(), source.assignment.mask());
        }
        prop_assert_eq!(joined.total_words(), a.map.total_words() + b.map.total_words());
        // First word of tenant B lands in B's first bank with B's mask.
        let addr = joined.locate(a.map.total_words());
        prop_assert_eq!(addr.bank, a.map.banks().len());
        prop_assert_eq!(addr.offset, 0);
    }

    /// The canonical TOML render round-trips: parse(to_toml(spec)) yields
    /// a spec with the identical layout digest and characterization key.
    #[test]
    fn to_toml_round_trips_layout(seed in arb_seed()) {
        let spec = SramSpec::sample(seed);
        let reparsed = SramSpec::from_toml_str(&spec.to_toml()).expect("canonical render parses");
        let original = GeneratedOrganization::build(&spec).expect("builds");
        let round_trip = GeneratedOrganization::build(&reparsed).expect("builds");
        prop_assert_eq!(layout_digest(&original.map), layout_digest(&round_trip.map));
        prop_assert_eq!(original.map, round_trip.map);
    }
}
