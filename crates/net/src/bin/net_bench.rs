//! Open-loop load generator for the network serving tier.
//!
//! ```text
//! cargo run --release -p sram_net --bin net_bench -- \
//!     [--tenants N] [--requests N] [--rate R] [--connections C] \
//!     [--threads W] [--seed S] [--shards S] \
//!     [--global-inflight N] [--soft-inflight N] [--per-conn-inflight N] \
//!     [--report PATH]
//! ```
//!
//! Builds up to three resident tenants — the trained digit classifier,
//! the trained spectra classifier, and the untrained million-synapse
//! network — over one shared sharded store, each under its own
//! significance/voltage policy, spawns the evented TCP server on a
//! loopback port, and drives it with the open-loop generator: `--rate`
//! requests/second of seeded Poisson-ish arrivals (`--rate 0` = burst,
//! the overload probe) spread over `--connections` sockets.
//!
//! Determinism: the request stream is a pure function of `--seed`,
//! `--requests`, `--rate`, and `--tenants`; predictions and fault
//! accounting are pure functions of `(seed, tenant, request_id)`. The
//! `net-load` CI job runs this binary twice at different `--connections`
//! and fails when the response digests diverge.
//!
//! The digits and spectra tenants are built from the committed generator
//! specs (`crates/gen/specs/*.toml`) via [`TenantSpec::from_generated`]:
//! policy, serving voltage, characterized bit-error rates, and drowsy
//! scale all come from the spec file. The million-synapse tenant keeps
//! hand-set Fig.5-ballpark rates (its geometry has no committed spec).
//! Energy figures use a behavioral per-tenant model (MAC + read energy
//! scaled by the tenant's serving Vdd squared) so the bench stays fast;
//! the characterized path lives in `serve_bench`/the framework.

use fault_inject::model::BitErrorRates;
use fault_inject::protection::ProtectionPolicy;
use neural::dataset::{spectra, Dataset};
use neural::network::Mlp;
use neural::quant::{Encoding, QuantizedMlp};
use neural::train::{train, TrainOptions};
use sram_net::loadgen::{self, LoadOptions, TenantStream};
use sram_net::registry::{ModelRegistry, TenantSpec};
use sram_net::server::{self, NetServerOptions};
use sram_serve::fixture::{million_synapse_network, trained_digit_network};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    tenants: usize,
    requests: usize,
    rate: f64,
    connections: usize,
    seed: u64,
    shards: usize,
    global_inflight: usize,
    soft_inflight: usize,
    per_conn_inflight: usize,
    report: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let raw = sram_exec::strip_threads_flag(std::env::args().skip(1).collect())?;
    let mut args = Args {
        tenants: 2,
        requests: 256,
        rate: 500.0,
        connections: 2,
        seed: 0x0E7B_E2C4,
        shards: 4,
        global_inflight: 256,
        soft_inflight: 0,
        per_conn_inflight: 0,
        report: None,
    };
    let mut it = raw.into_iter();
    while let Some(flag) = it.next() {
        let mut value_of = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--tenants" => {
                args.tenants = value_of("--tenants")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| (1..=3).contains(&n))
                    .ok_or("invalid --tenants value (1..=3)")?;
            }
            "--requests" => {
                args.requests = value_of("--requests")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("invalid --requests value")?;
            }
            "--rate" => {
                args.rate = value_of("--rate")?
                    .parse()
                    .ok()
                    .filter(|&r: &f64| r.is_finite() && r >= 0.0)
                    .ok_or("invalid --rate value")?;
            }
            "--connections" => {
                args.connections = value_of("--connections")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("invalid --connections value")?;
            }
            "--seed" => {
                args.seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed value")?;
            }
            "--shards" => {
                args.shards = value_of("--shards")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("invalid --shards value")?;
            }
            "--global-inflight" => {
                args.global_inflight = value_of("--global-inflight")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("invalid --global-inflight value")?;
            }
            "--soft-inflight" => {
                args.soft_inflight = value_of("--soft-inflight")?
                    .parse()
                    .map_err(|_| "invalid --soft-inflight value")?;
            }
            "--per-conn-inflight" => {
                args.per_conn_inflight = value_of("--per-conn-inflight")?
                    .parse()
                    .map_err(|_| "invalid --per-conn-inflight value")?;
            }
            "--report" => args.report = Some(value_of("--report")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.soft_inflight == 0 {
        args.soft_inflight = args.global_inflight * 3 / 4;
    }
    if args.per_conn_inflight == 0 {
        args.per_conn_inflight = args.global_inflight;
    }
    Ok(args)
}

fn format_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Monte-Carlo depth for the spec-characterized tenants: enough for
/// stable Fig.5-band rates, small enough that bench startup stays quick
/// (the tables are memoized process-wide anyway).
const TENANT_MC_SAMPLES: usize = 96;

/// Builds a tenant from a committed generator spec plus its trained
/// network — the one-line-spec path the generated design space uses.
fn generated_tenant(toml: &str, network: QuantizedMlp) -> TenantSpec {
    let spec = sram_gen::spec::SramSpec::from_toml_str(toml).expect("committed spec parses");
    let cfg = sram_gen::characterize::CharacterizeConfig {
        mc_samples: TENANT_MC_SAMPLES,
    };
    TenantSpec::from_generated(&spec, network, &cfg).expect("committed spec matches its network")
}

/// A tenant's serving contract with hand-set Fig.5-ballpark rates — kept
/// for the million-synapse tenant, whose geometry has no committed spec.
fn tenant_spec(
    name: &str,
    network: QuantizedMlp,
    msb_8t: usize,
    vdd: f64,
    read_6t: f64,
    drowsy_scale: f64,
) -> TenantSpec {
    let energy = sram_net::registry::behavioral_energy_j(&network, vdd);
    TenantSpec {
        name: name.to_string(),
        network,
        policy: ProtectionPolicy::MsbProtected { msb_8t },
        rates: BitErrorRates {
            read_6t,
            write_6t: read_6t / 5.0,
            read_8t: 0.0,
            write_8t: 0.0,
        },
        vdd,
        energy_per_inference_j: energy,
        drowsy_scale,
    }
}

fn trained_spectra_network() -> (QuantizedMlp, Dataset) {
    let data = spectra::generate_default(700, 0x59EC);
    let (train_set, test_set) = data.split(0.8, 4);
    let mut mlp = Mlp::new(&[spectra::SPECTRUM_BINS, 32, 16, spectra::NUM_CLASSES], 2);
    train(
        &mut mlp,
        &train_set,
        &TrainOptions {
            epochs: 8,
            ..TrainOptions::default()
        },
    );
    (
        QuantizedMlp::from_mlp(&mlp, Encoding::TwosComplement),
        test_set,
    )
}

/// Deterministic pseudo-features for the untrained million-synapse
/// tenant (what it classifies is irrelevant; that it is deterministic is
/// not).
fn synthetic_features(width: usize, variant: usize) -> Vec<f32> {
    (0..width)
        .map(|j| ((variant * 31 + j * 7) % 97) as f32 / 97.0)
        .collect()
}

/// Distinct feature vectors each tenant cycles through (bounds client
/// memory while keeping the stream varied).
const FEATURE_VARIANTS: usize = 64;

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("net_bench: {e}");
            std::process::exit(2);
        }
    };

    let t0 = Instant::now();
    let mut specs = Vec::new();
    let mut streams = Vec::new();
    // Tenant 0 — digits: aggressive voltage scaling, 3 MSBs protected.
    let (digits_q, digits_test) = trained_digit_network();
    streams.push(TenantStream {
        tenant: 0,
        features: (0..FEATURE_VARIANTS.min(digits_test.len()))
            .map(|i| digits_test.image(i).to_vec())
            .collect(),
    });
    specs.push(generated_tenant(
        include_str!("../../../gen/specs/digits.toml"),
        digits_q,
    ));
    // Tenant 1 — spectra: one more protected bit, milder voltage.
    if args.tenants >= 2 {
        let (spectra_q, spectra_test) = trained_spectra_network();
        streams.push(TenantStream {
            tenant: 1,
            features: (0..FEATURE_VARIANTS.min(spectra_test.len()))
                .map(|i| spectra_test.image(i).to_vec())
                .collect(),
        });
        specs.push(generated_tenant(
            include_str!("../../../gen/specs/spectra.toml"),
            spectra_q,
        ));
    }
    // Tenant 2 — million-synapse: near-nominal supply, cheap protection.
    if args.tenants >= 3 {
        let million_q = million_synapse_network();
        let width = million_q.layers[0].inputs;
        streams.push(TenantStream {
            tenant: 2,
            features: (0..FEATURE_VARIANTS)
                .map(|i| synthetic_features(width, i))
                .collect(),
        });
        specs.push(tenant_spec("million", million_q, 2, 0.90, 1e-5, 0.70));
    }

    let registry = Arc::new(ModelRegistry::new(specs, args.seed, args.shards));
    let server_options = NetServerOptions {
        global_inflight: args.global_inflight,
        soft_inflight: args.soft_inflight,
        per_conn_inflight: args.per_conn_inflight,
        ..NetServerOptions::default()
    };
    let running = match server::spawn(Arc::clone(&registry), server_options) {
        Ok(running) => running,
        Err(e) => {
            eprintln!("net_bench: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "fixture ready in {:.1} s — {} tenants ({} total words, {} shards), serving on {}",
        t0.elapsed().as_secs_f64(),
        registry.len(),
        registry.store().map().total_words(),
        args.shards,
        running.addr(),
    );

    let load_options = LoadOptions {
        rate: args.rate,
        requests: args.requests,
        connections: args.connections,
        seed: args.seed ^ 0xA441_1A1D,
        drain_timeout: Duration::from_secs(30),
    };
    let load = match loadgen::run(running.addr(), &streams, &load_options) {
        Ok(load) => load,
        Err(e) => {
            eprintln!("net_bench: load generator failed: {e}");
            std::process::exit(1);
        }
    };
    let report = running.stop();

    let rate_label = if args.rate > 0.0 {
        format!("{:.0} req/s", args.rate)
    } else {
        "burst".to_string()
    };
    println!(
        "arrival rate       {rate_label} over {} connections",
        args.connections
    );
    println!(
        "sent/ok/shed/err   {} / {} / {} / {}{}",
        load.sent,
        load.ok,
        load.shed,
        load.errors,
        if load.timed_out { "  (TIMED OUT)" } else { "" }
    );
    println!("throughput         {:.1} req/s", load.throughput_rps());
    println!(
        "sojourn p50/p99    {} / {}",
        format_ns(load.sojourn.p50_ns()),
        format_ns(load.sojourn.p99_ns())
    );
    println!(
        "queue wait p50/p99 {} / {}",
        format_ns(load.queue.p50_ns()),
        format_ns(load.queue.p99_ns())
    );
    println!(
        "service p50/p99    {} / {}",
        format_ns(load.service.p50_ns()),
        format_ns(load.service.p99_ns())
    );
    println!("response digest    {:016x}", load.digest);
    println!("server digest      {:016x}", report.digest());
    println!(
        "server served/shed {} / {} ({} pings, {} bad frames, {} conns, {} dropped)",
        report.served(),
        report.shed(),
        report.pings,
        report.bad_frames,
        report.conns_accepted,
        report.conns_dropped
    );
    for tenant in &report.tenants {
        println!(
            "  tenant {:<8} served {:>6}  shed {:>5}  drowsy {:>5} (x{} standby, {} degrades)  \
             service p99 {}  BER {:.3e}  energy {:.3} µJ",
            tenant.name,
            tenant.served,
            tenant.shed,
            tenant.drowsy_served,
            tenant.standby_scale,
            tenant.degrade_events,
            format_ns(tenant.service.p99_ns()),
            tenant.observed_bit_error_rate(),
            tenant.energy_j * 1e6,
        );
    }

    if let Some(path) = &args.report {
        let server_fault_bits: u64 = report.tenants.iter().map(|t| t.fault_bits).sum();
        let words_read: u64 = report.tenants.iter().map(|t| t.words_read).sum();
        let energy_j: f64 = report.tenants.iter().map(|t| t.energy_j).sum();
        let degrade_events: u64 = report.tenants.iter().map(|t| t.degrade_events).sum();
        let drowsy_served: u64 = report.tenants.iter().map(|t| t.drowsy_served).sum();
        let observed_ber = if words_read > 0 {
            server_fault_bits as f64 / (words_read * 8) as f64
        } else {
            0.0
        };
        let mut text = format!(
            "rate={:.3}\nrequests={}\nconnections={}\ntenants={}\nseed={}\n\
             sent={}\nok={}\nshed={}\nerrors={}\ntimed_out={}\n\
             throughput_rps={:.3}\n\
             sojourn_p50_ns={}\nsojourn_p99_ns={}\n\
             queue_p50_ns={}\nqueue_p99_ns={}\n\
             service_p50_ns={}\nservice_p99_ns={}\n\
             digest={:016x}\nserver_digest={:016x}\n\
             server_served={}\nserver_shed={}\nbad_frames={}\npings={}\n\
             conns_accepted={}\nconns_dropped={}\n\
             fault_bits={}\nwords_read={}\nobserved_ber={:.6e}\nenergy_j={:.6e}\n\
             degrade_events={}\ndrowsy_served={}\nwall_ns={}\n",
            args.rate,
            args.requests,
            args.connections,
            registry.len(),
            args.seed,
            load.sent,
            load.ok,
            load.shed,
            load.errors,
            load.timed_out,
            load.throughput_rps(),
            load.sojourn.p50_ns(),
            load.sojourn.p99_ns(),
            load.queue.p50_ns(),
            load.queue.p99_ns(),
            load.service.p50_ns(),
            load.service.p99_ns(),
            load.digest,
            report.digest(),
            report.served(),
            report.shed(),
            report.bad_frames,
            report.pings,
            report.conns_accepted,
            report.conns_dropped,
            server_fault_bits,
            words_read,
            observed_ber,
            energy_j,
            degrade_events,
            drowsy_served,
            load.wall.as_nanos(),
        );
        for (i, tenant) in report.tenants.iter().enumerate() {
            text.push_str(&format!(
                "tenant{i}_name={}\ntenant{i}_served={}\ntenant{i}_shed={}\n\
                 tenant{i}_drowsy_served={}\ntenant{i}_degrade_events={}\n\
                 tenant{i}_queue_p99_ns={}\ntenant{i}_service_p99_ns={}\n\
                 tenant{i}_ber={:.6e}\ntenant{i}_energy_j={:.6e}\ntenant{i}_digest={:016x}\n",
                tenant.name,
                tenant.served,
                tenant.shed,
                tenant.drowsy_served,
                tenant.degrade_events,
                tenant.queue.p99_ns(),
                tenant.service.p99_ns(),
                tenant.observed_bit_error_rate(),
                tenant.energy_j,
                tenant.digest,
            ));
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("could not write report {path}: {e}");
            std::process::exit(1);
        }
        println!("report written to {path}");
    }
    if load.timed_out {
        eprintln!("net_bench: drain timeout fired — server could not keep up");
        std::process::exit(1);
    }
}
