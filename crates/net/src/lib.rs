//! # sram-net — the network-facing serving tier
//!
//! The ROADMAP's "millions of users" leg made concrete: a hand-rolled,
//! std-only evented TCP front door over the hybrid 8T-6T synaptic store.
//! No async runtime, no epoll crate — non-blocking sockets and a poll
//! loop, the same no-external-deps discipline as the workspace shims.
//!
//! Three layers:
//!
//! * [`proto`] — the length-prefixed binary wire protocol. Total decoding
//!   (never panics, never over-allocates), incremental frame reassembly,
//!   and the order-invariant response digest the determinism gate pins.
//! * [`registry`] — the multi-tenant model registry: many resident ANNs
//!   (digits, spectra, a million-synapse synthetic) laid back to back in
//!   one shared [`ShardedMemory`], each bank window under its tenant's
//!   own significance/voltage policy, served through per-tenant seed
//!   streams.
//! * [`server`] + [`loadgen`] — the evented IO loop with backpressure
//!   (per-connection and global in-flight bounds → explicit `Overloaded`
//!   shedding; a soft watermark that degrades tenants to their drowsy
//!   retention tier) and the open-loop load generator that measures
//!   sojourn time against a seeded arrival schedule instead of a closed
//!   loop.
//!
//! **Determinism contract.** Tenant `t`, request `id` draws faults from
//! `derive_seed(derive_seed(base_seed, t), id)`. Same seed + same request
//! stream ⇒ byte-identical predictions and fault accounting at any worker
//! count, connection count, and interleaving; the `net-load` CI job
//! (`cargo xtask net-report --gate`) pins digest equality across two
//! connection counts over real sockets.
//!
//! The `net_bench` binary spawns the server and drives it:
//! `cargo run --release -p sram_net --bin net_bench -- --rate 600`.
//!
//! [`ShardedMemory`]: sram_array::sharded::ShardedMemory

#![warn(missing_docs)]

pub mod loadgen;
pub mod proto;
pub mod registry;
pub mod server;

pub use loadgen::{arrival_schedule_ns, LoadOptions, LoadReport, TenantStream};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, response_mix, ClassifyReply,
    FrameDecoder, ProtoError, Request, RequestBody, Response, Status, MAX_FRAME,
};
pub use registry::{ModelRegistry, TenantSpec};
pub use server::{NetReport, NetServerOptions, RunningServer, TenantReport};
