//! The open-loop load generator: deterministic Poisson-ish arrivals over
//! real sockets.
//!
//! Closed-loop benchmarks (send, wait, send) hide queueing: the generator
//! slows down exactly when the server does, so the latency they report is
//! service time, not what an arrival stream would experience. This
//! generator is **open-loop**: request `i`'s send time is scheduled up
//! front from a seeded exponential-gap stream, and the client never waits
//! for a response before sending the next request. Sojourn time is
//! measured from the *scheduled arrival*, so backlog shows up in the
//! histogram instead of silently stretching the run.
//!
//! # Determinism
//!
//! The arrival schedule, the tenant assignment (`i % tenants`), the
//! feature choice, and the request ids are all pure functions of the
//! options — two runs with the same seed send byte-identical request
//! streams, regardless of connection count. Combined with the registry's
//! per-request fault seeding, the response digest is reproducible
//! whenever the served set is (i.e. at zero shed).

use crate::proto::{
    decode_response, encode_request, response_mix, FrameDecoder, Request, RequestBody, Status,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sram_serve::LatencyHistogram;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One tenant's request material.
#[derive(Debug, Clone)]
pub struct TenantStream {
    /// Tenant index on the server.
    pub tenant: u16,
    /// Feature vectors to cycle through (request `k` of this tenant uses
    /// `features[k % features.len()]`).
    pub features: Vec<Vec<f32>>,
}

/// Load-run knobs.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Mean arrival rate, requests/second; `0.0` means *burst* (every
    /// request scheduled at t=0 — the overload probe).
    pub rate: f64,
    /// Total requests to send.
    pub requests: usize,
    /// Client connections; request `i` rides connection `i % connections`.
    pub connections: usize,
    /// Seed of the exponential inter-arrival stream.
    pub seed: u64,
    /// Give up (counting outstanding requests as errors) this long after
    /// the last scheduled arrival.
    pub drain_timeout: Duration,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            rate: 500.0,
            requests: 256,
            connections: 2,
            seed: 0x000E_11AD_5EED,
            drain_timeout: Duration::from_secs(30),
        }
    }
}

/// What an open-loop run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests actually written to a socket.
    pub sent: u64,
    /// `Ok` classify responses.
    pub ok: u64,
    /// `Overloaded` responses (admission shed).
    pub shed: u64,
    /// Everything else: error statuses, dead connections, responses never
    /// received before the drain timeout.
    pub errors: u64,
    /// Whether the drain timeout fired.
    pub timed_out: bool,
    /// Scheduled-arrival → response sojourn distribution (client-side;
    /// includes queueing the open-loop schedule exposes).
    pub sojourn: LatencyHistogram,
    /// Server-reported admission → worker-pop waits.
    pub queue: LatencyHistogram,
    /// Server-reported service times.
    pub service: LatencyHistogram,
    /// Order-invariant digest over `(tenant, id, prediction, fault_bits)`
    /// of every `Ok` response; matches the server's digest when every
    /// request was served.
    pub digest: u64,
    /// Sum of server-reported per-request fault bits.
    pub fault_bits: u64,
    /// First send → last response.
    pub wall: Duration,
}

impl LoadReport {
    /// Served requests per second of wall time.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.ok as f64 / secs
    }
}

/// The precomputed, seed-deterministic arrival offsets (nanoseconds from
/// run start). Exposed so tests can pin the schedule itself.
pub fn arrival_schedule_ns(rate: f64, requests: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = 0.0f64;
    (0..requests)
        .map(|_| {
            if rate > 0.0 {
                // Exponential gap: -ln(1-U)/rate, U ∈ [0,1).
                let u: f64 = rng.gen();
                at += -(1.0 - u).ln() / rate;
            }
            (at * 1e9) as u64
        })
        .collect()
}

struct ClientConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_pos: usize,
    dead: bool,
}

/// Runs one open-loop load pass against a serving address.
///
/// # Errors
///
/// Returns the connect error if any connection cannot be established;
/// mid-run socket failures are folded into [`LoadReport::errors`]
/// instead, so an overloaded server cannot wedge the client.
///
/// # Panics
///
/// Panics on zero streams, zero connections, or zero requests.
pub fn run(
    addr: SocketAddr,
    streams: &[TenantStream],
    options: &LoadOptions,
) -> std::io::Result<LoadReport> {
    assert!(!streams.is_empty(), "need at least one tenant stream");
    assert!(options.connections > 0, "need at least one connection");
    assert!(options.requests > 0, "need at least one request");
    let n = options.requests;
    let arrivals = arrival_schedule_ns(options.rate, n, options.seed);
    let mut conns: Vec<ClientConn> = Vec::with_capacity(options.connections);
    for _ in 0..options.connections {
        let stream = TcpStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        conns.push(ClientConn {
            stream,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            dead: false,
        });
    }

    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        shed: 0,
        errors: 0,
        timed_out: false,
        sojourn: LatencyHistogram::new(),
        queue: LatencyHistogram::new(),
        service: LatencyHistogram::new(),
        digest: 0,
        fault_bits: 0,
        wall: Duration::ZERO,
    };
    let start = Instant::now();
    let deadline_ns =
        arrivals.last().copied().unwrap_or(0) + options.drain_timeout.as_nanos() as u64;
    let mut next = 0usize;
    let mut outstanding = 0u64;
    let mut read_buf = [0u8; 8192];

    loop {
        let now_ns = start.elapsed().as_nanos() as u64;
        let mut progressed = false;

        // Send every request whose scheduled arrival has passed — without
        // waiting for any response (open loop).
        while next < n && arrivals[next] <= now_ns {
            progressed = true;
            let conn = &mut conns[next % options.connections];
            if conn.dead {
                report.errors += 1;
            } else {
                let s = &streams[next % streams.len()];
                let k = next / streams.len();
                let frame = encode_request(&Request {
                    tenant: s.tenant,
                    request_id: next as u64,
                    body: RequestBody::Classify(s.features[k % s.features.len()].clone()),
                });
                if conn.out_pos > 0 && conn.out_pos == conn.out.len() {
                    conn.out.clear();
                    conn.out_pos = 0;
                }
                conn.out.extend_from_slice(&frame);
                report.sent += 1;
                outstanding += 1;
            }
            next += 1;
        }

        for conn in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            // Flush pending writes.
            while conn.out_pos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(w) if w > 0 => {
                        progressed = true;
                        conn.out_pos += w;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    _ => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            // Read responses.
            loop {
                match conn.stream.read(&mut read_buf) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(r) => {
                        progressed = true;
                        conn.decoder.extend(&read_buf[..r]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            loop {
                match conn.decoder.next_frame() {
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(None) => break,
                    Ok(Some(payload)) => {
                        progressed = true;
                        outstanding = outstanding.saturating_sub(1);
                        let Ok(resp) = decode_response(&payload) else {
                            report.errors += 1;
                            continue;
                        };
                        let id = resp.request_id as usize;
                        match (resp.status, resp.reply) {
                            (Status::Ok, Some(reply)) if id < n => {
                                report.ok += 1;
                                let done_ns = start.elapsed().as_nanos() as u64;
                                report.sojourn.record(done_ns.saturating_sub(arrivals[id]));
                                report.queue.record(reply.queue_ns);
                                report.service.record(reply.service_ns);
                                report.fault_bits += u64::from(reply.fault_bits);
                                let tenant = streams[id % streams.len()].tenant;
                                report.digest = report.digest.wrapping_add(response_mix(
                                    tenant,
                                    resp.request_id,
                                    reply.prediction,
                                    reply.fault_bits,
                                ));
                            }
                            (Status::Overloaded, _) => report.shed += 1,
                            _ => report.errors += 1,
                        }
                    }
                }
            }
        }

        // Dead connections can never deliver their outstanding responses.
        if conns.iter().all(|c| c.dead) && next >= n {
            report.errors += outstanding;
            outstanding = 0;
        }
        if next >= n && outstanding == 0 {
            break;
        }
        if now_ns > deadline_ns {
            report.timed_out = true;
            report.errors += outstanding;
            break;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    report.wall = start.elapsed();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_rate_scaled() {
        let a = arrival_schedule_ns(1000.0, 64, 7);
        let b = arrival_schedule_ns(1000.0, 64, 7);
        assert_eq!(a, b);
        assert!(
            a.windows(2).all(|w| w[0] <= w[1]),
            "arrivals must be sorted"
        );
        let c = arrival_schedule_ns(1000.0, 64, 8);
        assert_ne!(a, c, "different seeds, different schedules");
        // Mean gap ≈ 1/rate: 64 arrivals at 1 kHz span ~64 ms (loose 3x bound).
        let span = *a.last().unwrap();
        assert!(span > 20_000_000 && span < 200_000_000, "span {span} ns");
    }

    #[test]
    fn burst_schedule_is_all_zero() {
        assert!(arrival_schedule_ns(0.0, 16, 3).iter().all(|&t| t == 0));
    }
}
