//! The wire protocol: length-prefixed binary frames.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by that many payload bytes. Requests and responses share the
//! frame layer; their payloads differ:
//!
//! ```text
//! request  payload = [version u8][opcode u8][tenant u16 LE][request_id u64 LE][body]
//!          Ping     body = (empty)
//!          Classify body = [n u32 LE][n × f32 LE]
//! response payload = [version u8][status u8][request_id u64 LE][body]
//!          Ok(Classify) body = [prediction u16 LE][fault_bits u32 LE]
//!                              [queue_ns u64 LE][service_ns u64 LE]
//!          otherwise    body = (empty)
//! ```
//!
//! Decoding is total: any byte string either yields a message or a
//! [`ProtoError`] — never a panic, and never an allocation larger than the
//! bytes actually received (a bit-flipped feature count cannot balloon a
//! buffer, because the count is validated against the payload length
//! before anything is allocated). Oversized declared lengths are caught at
//! the frame layer ([`FrameDecoder`]) before any buffering happens.

/// Protocol version carried in every payload.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard ceiling on a frame payload. The largest legitimate payload is a
/// million-synapse classify request (784 features ≈ 3.2 KiB); 64 KiB
/// leaves headroom for wider inputs while keeping a hostile length prefix
/// from reserving gigabytes.
pub const MAX_FRAME: usize = 64 * 1024;

/// Ceiling on the feature count of one classify request (consistent with
/// [`MAX_FRAME`]: `4 + 4 × MAX_FEATURES ≤ MAX_FRAME`).
pub const MAX_FEATURES: usize = 16_000;

/// Request operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; answered from the IO thread, never queued.
    Ping = 0,
    /// Classify a feature vector on the addressed tenant's network.
    Classify = 1,
}

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request served; a classify response carries a body.
    Ok = 0,
    /// Shed by admission control: the in-flight queue is at its bound.
    Overloaded = 1,
    /// The addressed tenant is not resident.
    UnknownTenant = 2,
    /// Structurally valid frame, semantically invalid request (bad
    /// version/opcode, wrong feature width, malformed body).
    BadRequest = 3,
    /// The declared frame length exceeds [`MAX_FRAME`]; the server answers
    /// this and closes the connection.
    FrameTooLarge = 4,
}

impl Status {
    fn from_u8(b: u8) -> Result<Self, ProtoError> {
        match b {
            0 => Ok(Status::Ok),
            1 => Ok(Status::Overloaded),
            2 => Ok(Status::UnknownTenant),
            3 => Ok(Status::BadRequest),
            4 => Ok(Status::FrameTooLarge),
            other => Err(ProtoError::BadStatus(other)),
        }
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Tenant index in the server's model registry.
    pub tenant: u16,
    /// Caller-chosen request id; seeds the fault stream and routes the
    /// response, so replaying an id replays its faults bit for bit.
    pub request_id: u64,
    /// The operation.
    pub body: RequestBody,
}

/// The operation a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness probe.
    Ping,
    /// Classify `features` (values in `[0, 1]`, one per input neuron).
    Classify(Vec<f32>),
}

/// A decoded response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Response {
    /// Outcome of the request.
    pub status: Status,
    /// Echo of the request id.
    pub request_id: u64,
    /// Present on `Ok` classify responses.
    pub reply: Option<ClassifyReply>,
}

/// The served result of a classify request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifyReply {
    /// Predicted class index.
    pub prediction: u16,
    /// Read-fault bits the request's fault stream injected.
    pub fault_bits: u32,
    /// Admission → worker-pop wait, server-side.
    pub queue_ns: u64,
    /// Worker-pop → completion service time, server-side.
    pub service_ns: u64,
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// Payload ended before the fixed header or declared body.
    Truncated,
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown status byte.
    BadStatus(u8),
    /// Declared element count disagrees with the payload length, or
    /// exceeds [`MAX_FEATURES`].
    LengthMismatch,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "payload truncated"),
            ProtoError::BadVersion(v) => write!(f, "unknown protocol version {v}"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            ProtoError::BadStatus(s) => write!(f, "unknown status {s}"),
            ProtoError::LengthMismatch => write!(f, "declared length disagrees with payload"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Little-endian cursor over a payload; every take is bounds-checked.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.bytes.len() {
            return Err(ProtoError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// Encodes a request as a full frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let body_len = match &req.body {
        RequestBody::Ping => 0,
        RequestBody::Classify(features) => 4 + 4 * features.len(),
    };
    let payload_len = 12 + body_len;
    let mut out = Vec::with_capacity(4 + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.push(PROTOCOL_VERSION);
    out.push(match req.body {
        RequestBody::Ping => Opcode::Ping as u8,
        RequestBody::Classify(_) => Opcode::Classify as u8,
    });
    out.extend_from_slice(&req.tenant.to_le_bytes());
    out.extend_from_slice(&req.request_id.to_le_bytes());
    if let RequestBody::Classify(features) = &req.body {
        out.extend_from_slice(&(features.len() as u32).to_le_bytes());
        for f in features {
            out.extend_from_slice(&f.to_le_bytes());
        }
    }
    out
}

/// Decodes a request payload (frame prefix already stripped).
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let opcode = c.u8()?;
    let tenant = c.u16()?;
    let request_id = c.u64()?;
    let body = match opcode {
        0 => {
            if c.remaining() != 0 {
                return Err(ProtoError::LengthMismatch);
            }
            RequestBody::Ping
        }
        1 => {
            let n = c.u32()? as usize;
            if n > MAX_FEATURES || c.remaining() != 4 * n {
                return Err(ProtoError::LengthMismatch);
            }
            let mut features = Vec::with_capacity(n);
            for _ in 0..n {
                features.push(c.f32()?);
            }
            RequestBody::Classify(features)
        }
        other => return Err(ProtoError::BadOpcode(other)),
    };
    Ok(Request {
        tenant,
        request_id,
        body,
    })
}

/// Encodes a response as a full frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let body_len = if resp.reply.is_some() { 22 } else { 0 };
    let payload_len = 10 + body_len;
    let mut out = Vec::with_capacity(4 + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.push(PROTOCOL_VERSION);
    out.push(resp.status as u8);
    out.extend_from_slice(&resp.request_id.to_le_bytes());
    if let Some(reply) = &resp.reply {
        out.extend_from_slice(&reply.prediction.to_le_bytes());
        out.extend_from_slice(&reply.fault_bits.to_le_bytes());
        out.extend_from_slice(&reply.queue_ns.to_le_bytes());
        out.extend_from_slice(&reply.service_ns.to_le_bytes());
    }
    out
}

/// Decodes a response payload (frame prefix already stripped).
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let status = Status::from_u8(c.u8()?)?;
    let request_id = c.u64()?;
    let reply = match c.remaining() {
        0 => None,
        22 => Some(ClassifyReply {
            prediction: c.u16()?,
            fault_bits: c.u32()?,
            queue_ns: c.u64()?,
            service_ns: c.u64()?,
        }),
        _ => return Err(ProtoError::LengthMismatch),
    };
    Ok(Response {
        status,
        request_id,
        reply,
    })
}

/// A declared frame length beyond [`MAX_FRAME`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The hostile/corrupt declared payload length.
    pub declared: usize,
}

/// Incremental frame reassembly over a byte stream.
///
/// Feed arbitrary chunks with [`extend`](Self::extend) and pop complete
/// payloads with [`next_frame`](Self::next_frame). The decoder never
/// panics and never buffers more than `4 + MAX_FRAME` bytes per pending
/// frame: a declared length beyond [`MAX_FRAME`] is rejected before its
/// body is awaited, which is what defuses a hostile length prefix.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete payload, `Ok(None)` while one is still
    /// partial, or [`FrameTooLarge`] when the pending declared length is
    /// hostile (the stream cannot be resynchronized after that — drop the
    /// connection).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameTooLarge> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let declared = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if declared > MAX_FRAME {
            return Err(FrameTooLarge { declared });
        }
        if self.buf.len() < 4 + declared {
            return Ok(None);
        }
        let payload = self.buf[4..4 + declared].to_vec();
        self.buf.drain(..4 + declared);
        Ok(Some(payload))
    }

    /// Whether a partial frame is pending (used for read-idle timeouts: a
    /// connection sitting on half a frame is a slow-loris suspect; an
    /// empty one is just idle).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }
}

/// Order-invariant fingerprint contribution of one served response
/// (splitmix64 finalizer over the packed fields). Accumulate with
/// `wrapping_add`: the sum is independent of completion order, so client
/// and server digests match whenever the served sets match — the
/// cross-run determinism check the `net-load` CI gate pins.
pub fn response_mix(tenant: u16, request_id: u64, prediction: u16, fault_bits: u32) -> u64 {
    let mut x = request_id
        ^ (u64::from(tenant) << 48)
        ^ (u64::from(prediction) << 32)
        ^ u64::from(fault_bits);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request {
            tenant: 2,
            request_id: 0xDEAD_BEEF,
            body: RequestBody::Classify(vec![0.0, 0.25, 1.0]),
        };
        let frame = encode_request(&req);
        let mut dec = FrameDecoder::new();
        dec.extend(&frame);
        let payload = dec.next_frame().unwrap().unwrap();
        assert_eq!(decode_request(&payload).unwrap(), req);
        assert!(!dec.has_partial());
    }

    #[test]
    fn response_roundtrip_with_and_without_body() {
        for resp in [
            Response {
                status: Status::Ok,
                request_id: 7,
                reply: Some(ClassifyReply {
                    prediction: 3,
                    fault_bits: 12,
                    queue_ns: 1000,
                    service_ns: 2000,
                }),
            },
            Response {
                status: Status::Overloaded,
                request_id: 9,
                reply: None,
            },
        ] {
            let frame = encode_response(&resp);
            let payload = frame[4..].to_vec();
            assert_eq!(decode_response(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn decoder_reassembles_split_frames() {
        let req = Request {
            tenant: 0,
            request_id: 1,
            body: RequestBody::Ping,
        };
        let frame = encode_request(&req);
        let mut dec = FrameDecoder::new();
        for chunk in frame.chunks(3) {
            assert!(dec.next_frame().unwrap().is_none() || !dec.has_partial());
            dec.extend(chunk);
        }
        let payload = dec.next_frame().unwrap().unwrap();
        assert_eq!(decode_request(&payload).unwrap(), req);
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_buffering() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(u32::MAX).to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(FrameTooLarge {
                declared: u32::MAX as usize
            })
        );
    }

    #[test]
    fn feature_count_is_validated_against_payload_length() {
        // A frame claiming 1000 features but carrying 1 must not allocate
        // for 1000.
        let mut payload = vec![PROTOCOL_VERSION, Opcode::Classify as u8, 0, 0];
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&1000u32.to_le_bytes());
        payload.extend_from_slice(&1.0f32.to_le_bytes());
        assert_eq!(decode_request(&payload), Err(ProtoError::LengthMismatch));
    }

    #[test]
    fn response_mix_is_order_invariant_under_addition() {
        let a = response_mix(0, 1, 2, 3);
        let b = response_mix(1, 2, 3, 4);
        assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        assert_ne!(a, b);
        assert_ne!(response_mix(0, 1, 2, 3), response_mix(0, 1, 3, 3));
    }
}
