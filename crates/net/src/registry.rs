//! The multi-tenant model registry: many resident ANNs over one shared
//! synaptic store.
//!
//! Each tenant brings its own network, its own significance policy (which
//! bits of each word are 8T cells), and its own voltage-derived bit-error
//! rates — the per-tenant retention/energy contract of the paper's
//! significance-driven allocation, extended across tenants. The registry
//! lays the tenants' per-layer banks back to back in one
//! [`SynapticMemoryMap`] (via [`SynapticMemoryMap::concat`]), loads the
//! concatenated weight image through the faulty write path once, then
//! shares the [`ShardedMemory`] behind an [`Arc`] with one resident
//! [`NeuromorphicSystem`] per tenant.
//!
//! # Determinism
//!
//! Tenant `t`'s fault stream is rooted at `derive_seed(base_seed, t)`;
//! request `id` of that tenant draws `derive_seed(tenant_seed, id)` via
//! [`InferContext`]. Predictions and per-request fault bits are therefore
//! a pure function of `(base_seed, tenant, request_id)` — independent of
//! worker count, connection interleaving, and the other tenants' traffic.

use fault_inject::model::{BitErrorRates, WordFailureModel};
use fault_inject::protection::ProtectionPolicy;
use neural::quant::QuantizedMlp;
use neuro_system::controller::{InferContext, NeuromorphicSystem};
use neuro_system::layout;
use neuro_system::npe::Npe;
use sram_array::organization::{SubArrayDims, SynapticMemoryMap};
use sram_array::sharded::ShardedMemory;
use sram_exec::derive_seed;
use sram_gen::error::GenError;
use std::sync::Arc;

/// Everything one tenant contributes to the shared store.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (reports, CI tables).
    pub name: String,
    /// The tenant's quantized network.
    pub network: QuantizedMlp,
    /// Per-layer 8T/6T significance policy for this tenant's banks.
    pub policy: ProtectionPolicy,
    /// Bit-error rates at the tenant's serving voltage.
    pub rates: BitErrorRates,
    /// Serving supply voltage (reporting only; the physics is already
    /// folded into `rates`).
    pub vdd: f64,
    /// Modeled energy per served inference, joules.
    pub energy_per_inference_j: f64,
    /// Standby-leakage scale of the tenant's drowsy retention tier
    /// (`1.0` = never drowsy, lower = deeper retention savings while
    /// degraded).
    pub drowsy_scale: f64,
}

impl TenantSpec {
    /// Builds a tenant's full serving contract from a generated macro
    /// spec: the significance policy, the characterized bit-error rates
    /// at the spec's serving voltage, the behavioral energy model, and a
    /// drowsy-leakage scale from the voltage-square law — everything the
    /// hand-wired tenants used to set by eye becomes one committed TOML
    /// file plus a trained network.
    ///
    /// `network` is the tenant's (typically trained) model; the spec only
    /// describes the macro it lives in, so the two must agree on per-bank
    /// word counts.
    ///
    /// # Errors
    ///
    /// Returns a [`GenError`] when the spec fails validation, its
    /// sub-array is not the paper's 256x256 geometry (the registry lays
    /// all tenants out on [`SubArrayDims::PAPER`]), or its bank layout
    /// does not match `network`.
    pub fn from_generated(
        spec: &sram_gen::spec::SramSpec,
        network: QuantizedMlp,
        cfg: &sram_gen::characterize::CharacterizeConfig,
    ) -> Result<Self, GenError> {
        spec.validate()?;
        if spec.dims != SubArrayDims::PAPER {
            return Err(GenError::Geometry {
                message: format!(
                    "registry tenants share {}x{} sub-arrays, spec asks for {}x{}",
                    SubArrayDims::PAPER.rows,
                    SubArrayDims::PAPER.cols,
                    spec.dims.rows,
                    spec.dims.cols
                ),
            });
        }
        let expected = spec.bank_words()?;
        let actual = layout::bank_words(&network);
        if expected != actual {
            return Err(GenError::Geometry {
                message: format!(
                    "spec banks {expected:?} do not match the tenant network's {actual:?}"
                ),
            });
        }
        let rates = sram_gen::characterize::serving_rates(spec, cfg);
        let vdd = spec.supply.vdd;
        let energy = behavioral_energy_j(&network, vdd);
        Ok(TenantSpec {
            name: spec.name.clone(),
            policy: spec.policy(),
            rates,
            vdd,
            energy_per_inference_j: energy,
            // Voltage-square law for the retention tier's standby leakage.
            drowsy_scale: (spec.supply.drowsy / vdd) * (spec.supply.drowsy / vdd),
            network,
        })
    }
}

/// Behavioral per-inference energy: 50 fJ/MAC + 150 fJ/read, scaled by
/// (vdd / 0.9)² — the dynamic-energy voltage square law, normalized to
/// the paper's nominal 0.9 V supply.
pub fn behavioral_energy_j(network: &QuantizedMlp, vdd: f64) -> f64 {
    let macs: usize = network.layers.iter().map(|l| l.inputs * l.outputs).sum();
    let reads: usize = network
        .layers
        .iter()
        .map(|l| l.inputs * l.outputs + l.outputs)
        .sum();
    let scale = (vdd / 0.9) * (vdd / 0.9);
    (macs as f64 * 50e-15 + reads as f64 * 150e-15) * scale
}

/// One resident tenant.
#[derive(Debug)]
struct Tenant {
    spec: TenantSpec,
    system: NeuromorphicSystem,
    seed: u64,
}

/// Many resident ANNs sharing one sharded synaptic store and the exec
/// pool.
#[derive(Debug)]
pub struct ModelRegistry {
    store: Arc<ShardedMemory>,
    tenants: Vec<Tenant>,
}

impl ModelRegistry {
    /// Builds the shared store and makes every tenant resident.
    ///
    /// Bank layout: tenant 0's layers first, then tenant 1's, and so on;
    /// each bank keeps its tenant's cell assignment and failure model.
    /// The concatenated weight image is loaded through the faulty write
    /// path exactly once, before the store is shared.
    ///
    /// # Panics
    ///
    /// Panics on zero tenants, zero shards, or a per-tenant policy that
    /// does not match its network's layer count.
    pub fn new(specs: Vec<TenantSpec>, base_seed: u64, shards: usize) -> Self {
        assert!(!specs.is_empty(), "registry needs at least one tenant");
        let mut maps = Vec::with_capacity(specs.len());
        let mut models: Vec<WordFailureModel> = Vec::new();
        let mut image: Vec<u8> = Vec::new();
        let mut first_banks = Vec::with_capacity(specs.len());
        let mut next_bank = 0usize;
        for spec in &specs {
            let words = layout::bank_words(&spec.network);
            maps.push(SynapticMemoryMap::new(
                &words,
                &spec.policy,
                SubArrayDims::PAPER,
            ));
            models.extend(
                (0..words.len())
                    .map(|b| WordFailureModel::new(&spec.rates, &spec.policy.assignment(b))),
            );
            image.extend(layout::flatten(&spec.network));
            first_banks.push(next_bank);
            next_bank += words.len();
        }
        let map = SynapticMemoryMap::concat(maps);
        let mut store = ShardedMemory::new(map, models, base_seed, shards);
        store.load(&image);
        let store = Arc::new(store);
        let tenants = specs
            .into_iter()
            .zip(first_banks)
            .enumerate()
            .map(|(t, (spec, first_bank))| {
                let system = NeuromorphicSystem::new_resident(
                    &spec.network,
                    Arc::clone(&store),
                    first_bank,
                    Npe::new(spec.network.format),
                );
                Tenant {
                    spec,
                    system,
                    seed: derive_seed(base_seed, t as u64),
                }
            })
            .collect();
        Self { store, tenants }
    }

    /// Resident tenant count.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the registry is empty (it never is — `new` panics on zero
    /// tenants — but clippy insists `len` has a partner).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The shared store.
    pub fn store(&self) -> &ShardedMemory {
        &self.store
    }

    /// The tenant's spec (name, policy, rates, energy model).
    pub fn spec(&self, tenant: usize) -> &TenantSpec {
        &self.tenants[tenant].spec
    }

    /// Feature width tenant `tenant` expects; admission validates against
    /// this so a malformed width is a protocol error, not a worker panic.
    pub fn input_width(&self, tenant: usize) -> usize {
        self.tenants[tenant].system.input_width()
    }

    /// Weight + bias words one inference of this tenant reads.
    pub fn reads_per_inference(&self, tenant: usize) -> u64 {
        self.tenants[tenant].system.reads_per_inference() as u64
    }

    /// A warm, pre-sized context for the tenant's network.
    pub fn make_context(&self, tenant: usize) -> InferContext {
        let t = &self.tenants[tenant];
        t.system.make_context(t.seed, 0)
    }

    /// Classifies `features` as request `request_id` of tenant `tenant`;
    /// returns `(prediction, fault_bits)`. The context is re-armed on the
    /// tenant's seed stream, so any context (even one last used by a
    /// different request or worker) produces bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if `features` does not match the tenant's input width —
    /// callers (the server's admission layer) validate first.
    pub fn classify(
        &self,
        tenant: usize,
        features: &[f32],
        request_id: u64,
        ctx: &mut InferContext,
    ) -> (usize, u64) {
        let t = &self.tenants[tenant];
        ctx.reset(t.seed, request_id);
        let prediction = t.system.classify_request(features, ctx);
        (prediction, ctx.fault_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::network::Mlp;
    use neural::quant::Encoding;

    fn tiny_spec(name: &str, shape: &[usize], seed: u64, read_6t: f64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            network: QuantizedMlp::from_mlp(&Mlp::new(shape, seed), Encoding::TwosComplement),
            policy: ProtectionPolicy::MsbProtected { msb_8t: 3 },
            rates: BitErrorRates {
                read_6t,
                write_6t: 0.0,
                read_8t: 0.0,
                write_8t: 0.0,
            },
            vdd: 0.7,
            energy_per_inference_j: 1e-9,
            drowsy_scale: 0.4,
        }
    }

    #[test]
    fn tenants_are_isolated_and_deterministic() {
        let specs = vec![
            tiny_spec("a", &[10, 8, 4], 1, 0.05),
            tiny_spec("b", &[6, 5, 3], 2, 0.2),
        ];
        let reg = ModelRegistry::new(specs.clone(), 99, 3);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.input_width(0), 10);
        assert_eq!(reg.input_width(1), 6);
        let feats_a: Vec<f32> = (0..10).map(|i| i as f32 / 10.0).collect();
        let feats_b: Vec<f32> = (0..6).map(|i| i as f32 / 6.0).collect();
        let mut ctx = reg.make_context(0);
        let first_a = reg.classify(0, &feats_a, 7, &mut ctx);
        let first_b = reg.classify(1, &feats_b, 7, &mut ctx);
        // Replays are exact, even through a context that served the other
        // tenant in between; and a second identically-built registry
        // replays the whole thing.
        assert_eq!(reg.classify(0, &feats_a, 7, &mut ctx), first_a);
        let reg2 = ModelRegistry::new(specs, 99, 5);
        let mut ctx2 = reg2.make_context(1);
        assert_eq!(reg2.classify(1, &feats_b, 7, &mut ctx2), first_b);
        assert_eq!(reg2.classify(0, &feats_a, 7, &mut ctx2), first_a);
    }

    #[test]
    fn from_generated_derives_the_contract_from_the_spec() {
        let toml = "name = \"gen-tenant\"\n[array]\nrows = 256\ncols = 256\nmux = 8\n\
                    [banks]\nlayers = [8, 4, 2]\nseed = 1\n\
                    [mix]\npolicy = \"msb\"\nsplit = 0.375\n\
                    [supply]\nvdd = 0.7\ndrowsy = 0.35\n";
        let spec = sram_gen::spec::SramSpec::from_toml_str(toml).expect("parses");
        let network = QuantizedMlp::from_mlp(&Mlp::new(&[8, 4, 2], 1), Encoding::TwosComplement);
        let cfg = sram_gen::characterize::CharacterizeConfig { mc_samples: 16 };
        let tenant =
            TenantSpec::from_generated(&spec, network.clone(), &cfg).expect("spec matches net");
        assert_eq!(tenant.name, "gen-tenant");
        assert_eq!(tenant.policy, ProtectionPolicy::MsbProtected { msb_8t: 3 });
        assert_eq!(tenant.vdd, 0.7);
        assert!((tenant.drowsy_scale - 0.25).abs() < 1e-12);
        assert_eq!(
            tenant.energy_per_inference_j,
            behavioral_energy_j(&network, 0.7)
        );
        // 8T cells at the serving voltage must be at least as reliable as
        // the 6T majority — the premise of the significance split.
        assert!(tenant.rates.read_8t <= tenant.rates.read_6t);
        // A registry accepts the generated tenant as-is.
        let reg = ModelRegistry::new(vec![tenant], 7, 2);
        assert_eq!(reg.input_width(0), 8);

        // Mismatched network: typed geometry error, not a later panic.
        let other = QuantizedMlp::from_mlp(&Mlp::new(&[9, 4, 2], 1), Encoding::TwosComplement);
        assert!(matches!(
            TenantSpec::from_generated(&spec, other, &cfg),
            Err(GenError::Geometry { .. })
        ));

        // Non-paper sub-array: rejected (the registry lays out PAPER dims).
        let mut small = spec.clone();
        small.dims = SubArrayDims { rows: 64, cols: 64 };
        assert!(matches!(
            TenantSpec::from_generated(&small, network, &cfg),
            Err(GenError::Geometry { .. })
        ));
    }

    #[test]
    fn store_concatenates_all_tenants() {
        let reg = ModelRegistry::new(
            vec![
                tiny_spec("a", &[10, 8, 4], 1, 0.0),
                tiny_spec("b", &[6, 5, 3], 2, 0.0),
            ],
            1,
            2,
        );
        let words_a: usize = 10 * 8 + 8 + 8 * 4 + 4;
        let words_b: usize = 6 * 5 + 5 + 5 * 3 + 3;
        assert_eq!(reg.store().map().total_words(), words_a + words_b);
        assert_eq!(reg.store().map().banks().len(), 4);
    }
}
