//! The evented TCP front door: non-blocking sockets, a poll loop, and
//! SLO-aware admission over the worker pool.
//!
//! # Architecture
//!
//! ```text
//! clients ──TCP──▶ IO thread ──admit──▶ job queue ──▶ worker 0..W ─┐
//!                  │  (accept, frame     (Mutex +                  │
//!                  │   decode, shed/     Condvar,   ModelRegistry::classify
//!                  │   degrade, write    bounded)   (&self, per-request ctx)
//!                  │   buffers, timeouts)                          │
//!                  ◀──────────── results channel (mpsc) ───────────┘
//! ```
//!
//! One IO thread owns every socket (no epoll, no registry — the same
//! hand-rolled discipline as the shims): it accepts, reads into
//! per-connection [`FrameDecoder`]s, makes the admission decision, drains
//! worker results into per-connection write buffers, and enforces the
//! timeouts. Workers never touch a socket; they pull jobs, classify on the
//! shared registry, and send results back over an `mpsc` channel.
//!
//! # Admission
//!
//! Three bounds, all checked before a classify request is queued:
//!
//! 1. **Per-connection in-flight** and **global in-flight** hard caps —
//!    beyond either, the request is *shed* with an explicit
//!    [`Status::Overloaded`] response (never silently dropped).
//! 2. A **soft watermark** below the global cap — beyond it the request
//!    still queues, but its tenant is degraded to its drowsy retention
//!    tier (standby-leakage scale [`TenantSpec::drowsy_scale`]); tenants
//!    recover when the backlog halves.
//!
//! Degrading changes the *energy accounting state*, never the fault
//! stream: predictions stay a pure function of `(tenant, request_id)`, so
//! overload timing cannot leak into the determinism contract.
//!
//! [`TenantSpec::drowsy_scale`]: crate::registry::TenantSpec::drowsy_scale
//! [`Status::Overloaded`]: crate::proto::Status::Overloaded

use crate::proto::{
    decode_request, encode_response, response_mix, ClassifyReply, FrameDecoder, Request,
    RequestBody, Response, Status,
};
use crate::registry::ModelRegistry;
use neuro_system::controller::InferContext;
use sram_serve::LatencyHistogram;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving-tier knobs.
#[derive(Debug, Clone)]
pub struct NetServerOptions {
    /// Address to bind; `127.0.0.1:0` picks a free port.
    pub bind_addr: String,
    /// Worker threads; 0 resolves like the exec pool
    /// ([`sram_exec::effective_threads`]).
    pub workers: usize,
    /// Global in-flight hard cap: beyond it classify requests are shed
    /// with [`Status::Overloaded`].
    pub global_inflight: usize,
    /// Soft watermark (≤ the hard cap): beyond it the request's tenant is
    /// degraded to its drowsy retention tier before queueing.
    pub soft_inflight: usize,
    /// Per-connection in-flight hard cap.
    pub per_conn_inflight: usize,
    /// A connection sitting on a *partial* frame longer than this is
    /// dropped — the slow-loris bound. Idle connections (no partial
    /// frame) are left open.
    pub read_idle_timeout: Duration,
    /// Per-connection write-buffer cap; a reader slower than this is
    /// dropped rather than allowed to balloon server memory.
    pub max_write_buffer: usize,
    /// Connection count cap; excess accepts are closed immediately.
    pub max_conns: usize,
}

impl Default for NetServerOptions {
    fn default() -> Self {
        Self {
            bind_addr: "127.0.0.1:0".to_string(),
            workers: 0,
            global_inflight: 256,
            soft_inflight: 192,
            per_conn_inflight: 128,
            read_idle_timeout: Duration::from_secs(5),
            max_write_buffer: 1 << 20,
            max_conns: 1024,
        }
    }
}

/// Hard ceiling on worker threads (same guard as the serve layer).
const MAX_WORKERS: usize = 256;

/// Poll-loop sleep when a tick moved no bytes; bounds idle CPU burn at
/// the cost of ~a tenth of a millisecond of added latency.
const IDLE_TICK: Duration = Duration::from_micros(100);

/// How long `stop()` waits for in-flight work and write buffers to drain
/// before tearing the loop down anyway.
const STOP_DEADLINE: Duration = Duration::from_secs(10);

/// Per-tenant serving metrics.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant display name.
    pub name: String,
    /// Classify requests served.
    pub served: u64,
    /// Classify requests shed with `Overloaded`.
    pub shed: u64,
    /// Served requests admitted while the tenant was degraded to its
    /// drowsy tier.
    pub drowsy_served: u64,
    /// Healthy → drowsy transitions.
    pub degrade_events: u64,
    /// Admission → worker-pop wait distribution.
    pub queue: LatencyHistogram,
    /// Worker-pop → completion service distribution.
    pub service: LatencyHistogram,
    /// Read-fault bits injected into this tenant's requests.
    pub fault_bits: u64,
    /// Memory words read by this tenant's requests.
    pub words_read: u64,
    /// Modeled dynamic energy, joules (served × per-inference).
    pub energy_j: f64,
    /// Standby-leakage scale currently in effect (1.0 healthy,
    /// `drowsy_scale` while degraded).
    pub standby_scale: f64,
    /// Order-invariant digest over `(request_id, prediction, fault_bits)`
    /// of every served request.
    pub digest: u64,
}

impl TenantReport {
    /// Injected fault bits per bit read.
    pub fn observed_bit_error_rate(&self) -> f64 {
        let bits = self.words_read.saturating_mul(8);
        if bits == 0 {
            return 0.0;
        }
        self.fault_bits as f64 / bits as f64
    }
}

/// Everything one server run produced.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Per-tenant metrics, registry order.
    pub tenants: Vec<TenantReport>,
    /// Connections accepted.
    pub conns_accepted: u64,
    /// Connections dropped by the server (timeouts, protocol violations,
    /// write-buffer overflow) — *not* counting clean client closes.
    pub conns_dropped: u64,
    /// Frames that failed to decode into a request.
    pub bad_frames: u64,
    /// Pings answered.
    pub pings: u64,
    /// Wall time the server ran.
    pub wall: Duration,
}

impl NetReport {
    /// Classify requests served, all tenants.
    pub fn served(&self) -> u64 {
        self.tenants.iter().map(|t| t.served).sum()
    }

    /// Classify requests shed, all tenants.
    pub fn shed(&self) -> u64 {
        self.tenants.iter().map(|t| t.shed).sum()
    }

    /// Order-invariant digest over every served request, all tenants.
    pub fn digest(&self) -> u64 {
        self.tenants
            .iter()
            .fold(0u64, |acc, t| acc.wrapping_add(t.digest))
    }
}

/// A running server; dropping it without [`stop`](Self::stop) detaches
/// the serving thread (it keeps serving until process exit).
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<NetReport>>,
}

impl RunningServer {
    /// The bound address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the IO loop to finish in-flight work, tears it down, and
    /// returns the final report.
    ///
    /// # Panics
    ///
    /// Propagates a server-thread panic.
    pub fn stop(mut self) -> NetReport {
        self.stop.store(true, Ordering::SeqCst);
        self.handle
            .take()
            .expect("server already stopped")
            .join()
            .expect("server thread panicked")
    }
}

/// Binds the listener and spawns the IO thread + worker pool.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn spawn(
    registry: Arc<ModelRegistry>,
    options: NetServerOptions,
) -> std::io::Result<RunningServer> {
    let listener = TcpListener::bind(&options.bind_addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("sram-net-io".to_string())
        .spawn(move || run_server(listener, &registry, &options, &stop_flag))
        .expect("spawn server thread");
    Ok(RunningServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// One admitted classify job.
struct Job {
    slot: usize,
    gen: u64,
    tenant: usize,
    request_id: u64,
    features: Vec<f32>,
    admitted: Instant,
    drowsy: bool,
}

/// A finished classify job, routed back to its connection.
struct Done {
    slot: usize,
    gen: u64,
    tenant: usize,
    request_id: u64,
    prediction: u16,
    fault_bits: u64,
    queue_ns: u64,
    service_ns: u64,
    drowsy: bool,
}

/// Job queue shared between the IO thread and the workers.
#[derive(Default)]
struct JobQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// One connection's state, owned by the IO thread.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Pending outbound bytes (responses are appended, flushed as the
    /// socket accepts them).
    out: Vec<u8>,
    /// How much of `out` is already written.
    out_pos: usize,
    inflight: usize,
    gen: u64,
    last_progress: Instant,
    /// Flush-then-close (set after a protocol violation).
    closing: bool,
    /// Peer closed its write side; reap once our buffer drains and no
    /// jobs are in flight.
    peer_closed: bool,
}

impl Conn {
    fn queue_response(&mut self, resp: &Response) {
        // Drop the already-flushed prefix occasionally so the buffer does
        // not grow without bound on long-lived connections.
        if self.out_pos > 0 && self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        self.out.extend_from_slice(&encode_response(resp));
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// Per-tenant mutable serving state (IO-thread local).
struct TenantState {
    report: TenantReport,
    drowsy: bool,
    drowsy_scale: f64,
    energy_per_inference_j: f64,
    words_per_inference: u64,
    input_width: usize,
}

fn run_server(
    listener: TcpListener,
    registry: &Arc<ModelRegistry>,
    options: &NetServerOptions,
    stop: &AtomicBool,
) -> NetReport {
    let started = Instant::now();
    let workers = if options.workers > 0 {
        options.workers
    } else {
        sram_exec::effective_threads()
    }
    .clamp(1, MAX_WORKERS);
    let queue = Arc::new((Mutex::new(JobQueue::default()), Condvar::new()));
    let (done_tx, done_rx) = mpsc::channel::<Done>();

    let mut tenants: Vec<TenantState> = (0..registry.len())
        .map(|t| {
            let spec = registry.spec(t);
            TenantState {
                report: TenantReport {
                    name: spec.name.clone(),
                    served: 0,
                    shed: 0,
                    drowsy_served: 0,
                    degrade_events: 0,
                    queue: LatencyHistogram::new(),
                    service: LatencyHistogram::new(),
                    fault_bits: 0,
                    words_read: 0,
                    energy_j: 0.0,
                    standby_scale: 1.0,
                    digest: 0,
                },
                drowsy: false,
                drowsy_scale: spec.drowsy_scale,
                energy_per_inference_j: spec.energy_per_inference_j,
                words_per_inference: registry.reads_per_inference(t),
                input_width: registry.input_width(t),
            }
        })
        .collect();
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut conns_accepted = 0u64;
    let mut conns_dropped = 0u64;
    let mut bad_frames = 0u64;
    let mut pings = 0u64;
    let mut inflight = 0usize;
    let mut stop_seen: Option<Instant> = None;

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queue = Arc::clone(&queue);
            let done_tx = done_tx.clone();
            let registry = Arc::clone(registry);
            std::thread::Builder::new()
                .name(format!("sram-net-worker-{w}"))
                .spawn_scoped(scope, move || worker_loop(&registry, &queue, &done_tx))
                .expect("spawn worker");
        }
        drop(done_tx);

        let mut read_buf = [0u8; 8192];
        loop {
            let mut progressed = false;

            // 1. Accept.
            if stop_seen.is_none() {
                loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            progressed = true;
                            let live = conns.iter().filter(|c| c.is_some()).count();
                            if live >= options.max_conns || stream.set_nonblocking(true).is_err() {
                                conns_dropped += 1;
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            conns_accepted += 1;
                            let conn = Conn {
                                stream,
                                decoder: FrameDecoder::new(),
                                out: Vec::new(),
                                out_pos: 0,
                                inflight: 0,
                                gen: conns_accepted,
                                last_progress: Instant::now(),
                                closing: false,
                                peer_closed: false,
                            };
                            match conns.iter_mut().position(|c| c.is_none()) {
                                Some(slot) => conns[slot] = Some(conn),
                                None => conns.push(Some(conn)),
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }

            // 2. Read + decode + admit.
            for (slot, entry) in conns.iter_mut().enumerate() {
                let Some(conn) = entry.as_mut() else {
                    continue;
                };
                if conn.closing {
                    continue;
                }
                let mut budget = 8; // reads per conn per tick; keeps one firehose from starving the rest
                while budget > 0 {
                    budget -= 1;
                    match conn.stream.read(&mut read_buf) {
                        Ok(0) => {
                            conn.peer_closed = true;
                            break;
                        }
                        Ok(n) => {
                            progressed = true;
                            conn.last_progress = Instant::now();
                            conn.decoder.extend(&read_buf[..n]);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => {
                            conn.peer_closed = true;
                            break;
                        }
                    }
                }
                // Pop every complete frame.
                loop {
                    match conn.decoder.next_frame() {
                        Err(oversized) => {
                            bad_frames += 1;
                            conn.queue_response(&Response {
                                status: Status::FrameTooLarge,
                                request_id: oversized.declared as u64,
                                reply: None,
                            });
                            conn.closing = true;
                            break;
                        }
                        Ok(None) => break,
                        Ok(Some(payload)) => {
                            progressed = true;
                            match decode_request(&payload) {
                                Err(_) => {
                                    bad_frames += 1;
                                    conn.queue_response(&Response {
                                        status: Status::BadRequest,
                                        request_id: 0,
                                        reply: None,
                                    });
                                }
                                Ok(req) => handle_request(
                                    req,
                                    slot,
                                    conn,
                                    &mut tenants,
                                    &mut inflight,
                                    &mut pings,
                                    options,
                                    &queue,
                                ),
                            }
                        }
                    }
                }
            }

            // 3. Drain worker results into write buffers.
            while let Ok(done) = done_rx.try_recv() {
                progressed = true;
                inflight -= 1;
                let state = &mut tenants[done.tenant];
                state.report.served += 1;
                state.report.queue.record(done.queue_ns);
                state.report.service.record(done.service_ns);
                state.report.fault_bits += done.fault_bits;
                state.report.words_read += state.words_per_inference;
                state.report.energy_j += state.energy_per_inference_j;
                if done.drowsy {
                    state.report.drowsy_served += 1;
                }
                state.report.digest = state.report.digest.wrapping_add(response_mix(
                    done.tenant as u16,
                    done.request_id,
                    done.prediction,
                    done.fault_bits as u32,
                ));
                // Backlog halved: recover every tenant to the healthy tier.
                if inflight * 2 < options.soft_inflight {
                    for t in tenants.iter_mut() {
                        t.drowsy = false;
                    }
                }
                if let Some(conn) = conns[done.slot].as_mut() {
                    if conn.gen == done.gen {
                        conn.inflight -= 1;
                        conn.queue_response(&Response {
                            status: Status::Ok,
                            request_id: done.request_id,
                            reply: Some(ClassifyReply {
                                prediction: done.prediction,
                                fault_bits: done.fault_bits as u32,
                                queue_ns: done.queue_ns,
                                service_ns: done.service_ns,
                            }),
                        });
                    }
                }
            }

            // 4. Flush write buffers; enforce timeouts; reap connections.
            let now = Instant::now();
            for entry in conns.iter_mut() {
                let Some(conn) = entry.as_mut() else {
                    continue;
                };
                while conn.pending_out() > 0 {
                    match conn.stream.write(&conn.out[conn.out_pos..]) {
                        Ok(n) if n > 0 => {
                            progressed = true;
                            conn.out_pos += n;
                            conn.last_progress = now;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        // Dead peer (or zero-length write): nothing left
                        // to flush to — discard the buffer so the
                        // connection can be reaped.
                        _ => {
                            conn.out_pos = conn.out.len();
                            conn.peer_closed = true;
                            break;
                        }
                    }
                }
                let slow_loris = conn.decoder.has_partial()
                    && now.duration_since(conn.last_progress) > options.read_idle_timeout;
                let stuck_writer = conn.pending_out() > options.max_write_buffer
                    || (conn.pending_out() > 0
                        && now.duration_since(conn.last_progress) > options.read_idle_timeout);
                let flushed_close = (conn.closing || conn.peer_closed)
                    && conn.pending_out() == 0
                    && conn.inflight == 0;
                if slow_loris || stuck_writer || conn.closing && conn.peer_closed {
                    conns_dropped += 1;
                    *entry = None;
                } else if flushed_close {
                    if conn.closing {
                        conns_dropped += 1;
                    }
                    *entry = None;
                }
            }

            // 5. Stop handling.
            if stop.load(Ordering::SeqCst) && stop_seen.is_none() {
                stop_seen = Some(Instant::now());
            }
            if let Some(at) = stop_seen {
                let drained = inflight == 0 && conns.iter().flatten().all(|c| c.pending_out() == 0);
                if drained || at.elapsed() > STOP_DEADLINE {
                    break;
                }
            }

            if !progressed {
                std::thread::sleep(IDLE_TICK);
            }
        }

        // Tear the workers down.
        {
            let (lock, cvar) = &*queue;
            lock.lock().unwrap_or_else(|e| e.into_inner()).shutdown = true;
            cvar.notify_all();
        }
        // Scoped threads join here; drain any results that raced the stop.
        while done_rx.try_recv().is_ok() {}
    });

    for state in tenants.iter_mut() {
        state.report.standby_scale = if state.drowsy {
            state.drowsy_scale
        } else {
            1.0
        };
    }
    NetReport {
        tenants: tenants.into_iter().map(|t| t.report).collect(),
        conns_accepted,
        conns_dropped,
        bad_frames,
        pings,
        wall: started.elapsed(),
    }
}

/// Admission: validate, shed, degrade, or queue one decoded request.
#[allow(clippy::too_many_arguments)]
fn handle_request(
    req: Request,
    slot: usize,
    conn: &mut Conn,
    tenants: &mut [TenantState],
    inflight: &mut usize,
    pings: &mut u64,
    options: &NetServerOptions,
    queue: &Arc<(Mutex<JobQueue>, Condvar)>,
) {
    let features = match req.body {
        RequestBody::Ping => {
            *pings += 1;
            conn.queue_response(&Response {
                status: Status::Ok,
                request_id: req.request_id,
                reply: None,
            });
            return;
        }
        RequestBody::Classify(features) => features,
    };
    let tenant = req.tenant as usize;
    if tenant >= tenants.len() {
        conn.queue_response(&Response {
            status: Status::UnknownTenant,
            request_id: req.request_id,
            reply: None,
        });
        return;
    }
    let state = &mut tenants[tenant];
    if features.len() != state.input_width {
        conn.queue_response(&Response {
            status: Status::BadRequest,
            request_id: req.request_id,
            reply: None,
        });
        return;
    }
    if *inflight >= options.global_inflight || conn.inflight >= options.per_conn_inflight {
        state.report.shed += 1;
        conn.queue_response(&Response {
            status: Status::Overloaded,
            request_id: req.request_id,
            reply: None,
        });
        return;
    }
    // Soft overload: degrade this tenant to its drowsy retention tier,
    // then queue anyway. Energy accounting changes; the fault stream does
    // not (determinism contract).
    if *inflight >= options.soft_inflight && !state.drowsy {
        state.drowsy = true;
        state.report.degrade_events += 1;
    }
    *inflight += 1;
    conn.inflight += 1;
    let job = Job {
        slot,
        gen: conn.gen,
        tenant,
        request_id: req.request_id,
        features,
        admitted: Instant::now(),
        drowsy: state.drowsy,
    };
    let (lock, cvar) = &**queue;
    lock.lock()
        .unwrap_or_else(|e| e.into_inner())
        .jobs
        .push_back(job);
    cvar.notify_one();
}

fn worker_loop(
    registry: &ModelRegistry,
    queue: &Arc<(Mutex<JobQueue>, Condvar)>,
    done_tx: &mpsc::Sender<Done>,
) {
    // One warm context per tenant; `classify` re-arms the RNG per request,
    // so reuse is invisible to the outputs.
    let mut ctxs: Vec<Option<InferContext>> = (0..registry.len()).map(|_| None).collect();
    let (lock, cvar) = &**queue;
    loop {
        let job = {
            let mut q = lock.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = cvar.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let popped = Instant::now();
        let queue_ns = popped.duration_since(job.admitted).as_nanos() as u64;
        let ctx = ctxs[job.tenant].get_or_insert_with(|| registry.make_context(job.tenant));
        let (prediction, fault_bits) =
            registry.classify(job.tenant, &job.features, job.request_id, ctx);
        let service_ns = popped.elapsed().as_nanos() as u64;
        if done_tx
            .send(Done {
                slot: job.slot,
                gen: job.gen,
                tenant: job.tenant,
                request_id: job.request_id,
                prediction: prediction as u16,
                fault_bits,
                queue_ns,
                service_ns,
                drowsy: job.drowsy,
            })
            .is_err()
        {
            return;
        }
    }
}
