//! Protocol-robustness and end-to-end serving tests: hostile bytes,
//! slow-loris clients, overload, and the cross-interleaving determinism
//! contract — all over real sockets.

use fault_inject::model::BitErrorRates;
use fault_inject::protection::ProtectionPolicy;
use neural::network::Mlp;
use neural::quant::{Encoding, QuantizedMlp};
use proptest::prelude::*;
use sram_net::loadgen::{self, LoadOptions, TenantStream};
use sram_net::proto::{
    decode_request, decode_response, encode_request, FrameDecoder, Request, RequestBody, Status,
    MAX_FEATURES,
};
use sram_net::registry::{ModelRegistry, TenantSpec};
use sram_net::server::{self, NetServerOptions, RunningServer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn tiny_spec(name: &str, shape: &[usize], seed: u64, read_6t: f64) -> TenantSpec {
    TenantSpec {
        name: name.to_string(),
        network: QuantizedMlp::from_mlp(&Mlp::new(shape, seed), Encoding::TwosComplement),
        policy: ProtectionPolicy::MsbProtected { msb_8t: 3 },
        rates: BitErrorRates {
            read_6t,
            write_6t: 0.0,
            read_8t: 0.0,
            write_8t: 0.0,
        },
        vdd: 0.7,
        energy_per_inference_j: 1e-9,
        drowsy_scale: 0.4,
    }
}

fn tiny_registry(base_seed: u64) -> Arc<ModelRegistry> {
    Arc::new(ModelRegistry::new(
        vec![
            tiny_spec("alpha", &[12, 8, 4], 1, 0.02),
            tiny_spec("beta", &[9, 6, 3], 2, 0.1),
        ],
        base_seed,
        2,
    ))
}

fn spawn_tiny(options: NetServerOptions) -> RunningServer {
    server::spawn(tiny_registry(77), options).expect("bind loopback")
}

fn tiny_streams() -> Vec<TenantStream> {
    vec![
        TenantStream {
            tenant: 0,
            features: (0..8)
                .map(|v| {
                    (0..12)
                        .map(|j| ((v * 13 + j * 5) % 31) as f32 / 31.0)
                        .collect()
                })
                .collect(),
        },
        TenantStream {
            tenant: 1,
            features: (0..8)
                .map(|v| {
                    (0..9)
                        .map(|j| ((v * 7 + j * 11) % 29) as f32 / 29.0)
                        .collect()
                })
                .collect(),
        },
    ]
}

/// Blocking client connection with a read timeout, for the raw-socket
/// probes.
fn connect(server: &RunningServer) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let _ = stream.set_nodelay(true);
    stream
}

/// Reads one length-prefixed response frame off a blocking stream.
fn read_response(stream: &mut TcpStream) -> sram_net::Response {
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 512];
    loop {
        if let Some(payload) = decoder.next_frame().expect("frame within bounds") {
            return decode_response(&payload).expect("decodable response");
        }
        let n = stream.read(&mut buf).expect("read response");
        assert!(n > 0, "server closed before responding");
        decoder.extend(&buf[..n]);
    }
}

fn classify_frame(tenant: u16, request_id: u64, features: Vec<f32>) -> Vec<u8> {
    encode_request(&Request {
        tenant,
        request_id,
        body: RequestBody::Classify(features),
    })
}

// ---------------------------------------------------------------------
// Pure-protocol property tests: hostile bytes must never panic, hang,
// or balloon memory — they decode or they error, nothing else.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn decoder_survives_arbitrary_byte_soup(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut decoder = FrameDecoder::new();
        decoder.extend(&data);
        loop {
            match decoder.next_frame() {
                Ok(Some(payload)) => {
                    // Whatever framed payload fell out must decode totally.
                    let _ = decode_request(&payload);
                    let _ = decode_response(&payload);
                }
                Ok(None) => break,
                Err(oversized) => {
                    prop_assert!(oversized.declared > sram_net::MAX_FRAME);
                    break;
                }
            }
        }
    }

    #[test]
    fn truncated_frames_never_decode(
        features in proptest::collection::vec(-1e3f32..1e3, 0..64),
        cut in 0usize..1000,
    ) {
        let frame = classify_frame(1, 42, features);
        let cut = cut % frame.len(); // strictly shorter than the full frame
        let mut decoder = FrameDecoder::new();
        decoder.extend(&frame[..cut]);
        // A prefix of a valid frame is at most an incomplete frame — never
        // a complete (mis)parsed one.
        prop_assert!(decoder.next_frame().expect("within bounds").is_none());
        prop_assert_eq!(decoder.has_partial(), cut > 0);
    }

    #[test]
    fn bit_flipped_frames_decode_totally(
        features in proptest::collection::vec(-1e3f32..1e3, 1..64),
        byte_idx in 0usize..1000,
        bit in 0u8..8,
    ) {
        let mut frame = classify_frame(0, 7, features);
        let idx = byte_idx % frame.len();
        frame[idx] ^= 1 << bit;
        let mut decoder = FrameDecoder::new();
        decoder.extend(&frame);
        match decoder.next_frame() {
            Err(oversized) => prop_assert!(oversized.declared > sram_net::MAX_FRAME),
            Ok(None) => {} // flip hit the length prefix; frame now incomplete
            Ok(Some(payload)) => {
                if let Ok(req) = decode_request(&payload) {
                    if let RequestBody::Classify(feats) = req.body {
                        // A corrupted count can never balloon the allocation.
                        prop_assert!(feats.len() <= MAX_FEATURES);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Live-server robustness.
// ---------------------------------------------------------------------

#[test]
fn ping_unknown_tenant_and_bad_width_get_structured_errors() {
    let server = spawn_tiny(NetServerOptions::default());
    let mut stream = connect(&server);

    let ping = encode_request(&Request {
        tenant: 0,
        request_id: 5,
        body: RequestBody::Ping,
    });
    stream.write_all(&ping).unwrap();
    let resp = read_response(&mut stream);
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.request_id, 5);
    assert!(resp.reply.is_none(), "ping carries no classify reply");

    stream
        .write_all(&classify_frame(9, 6, vec![0.0; 12]))
        .unwrap();
    assert_eq!(read_response(&mut stream).status, Status::UnknownTenant);

    stream
        .write_all(&classify_frame(0, 7, vec![0.0; 5]))
        .unwrap();
    assert_eq!(read_response(&mut stream).status, Status::BadRequest);

    // The connection survived all three errors and still serves.
    stream
        .write_all(&classify_frame(0, 8, vec![0.5; 12]))
        .unwrap();
    let resp = read_response(&mut stream);
    assert_eq!(resp.status, Status::Ok);
    assert!(resp.reply.is_some());

    let report = server.stop();
    assert_eq!(report.pings, 1);
    assert_eq!(report.served(), 1);
}

#[test]
fn oversized_frame_is_rejected_and_connection_dropped() {
    let server = spawn_tiny(NetServerOptions::default());
    let mut stream = connect(&server);
    // Declare a frame far beyond MAX_FRAME; send only the prefix.
    stream
        .write_all(&(8 * 1024 * 1024u32).to_le_bytes())
        .unwrap();
    stream.write_all(&[0u8; 64]).unwrap();
    let resp = read_response(&mut stream);
    assert_eq!(resp.status, Status::FrameTooLarge);
    // The server closes its side after responding.
    let mut buf = [0u8; 64];
    let eof = (0..100).any(|_| matches!(stream.read(&mut buf), Ok(0)));
    assert!(eof, "connection should be closed after FrameTooLarge");
    let report = server.stop();
    assert_eq!(report.bad_frames, 1);
    assert_eq!(report.conns_dropped, 1);
}

#[test]
fn garbage_payload_gets_bad_request_not_a_hang() {
    let server = spawn_tiny(NetServerOptions::default());
    let mut stream = connect(&server);
    // Valid length prefix, garbage payload.
    let garbage = [0xFFu8; 16];
    stream
        .write_all(&(garbage.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(&garbage).unwrap();
    assert_eq!(read_response(&mut stream).status, Status::BadRequest);
    // Still serving afterwards.
    stream
        .write_all(&classify_frame(1, 9, vec![0.25; 9]))
        .unwrap();
    assert_eq!(read_response(&mut stream).status, Status::Ok);
    let report = server.stop();
    assert_eq!(report.bad_frames, 1);
}

#[test]
fn truncated_frame_then_abort_does_not_wedge_the_server() {
    let server = spawn_tiny(NetServerOptions::default());
    {
        let mut stream = connect(&server);
        // Half a frame, then slam the connection shut.
        let frame = classify_frame(0, 3, vec![0.1; 12]);
        stream.write_all(&frame[..frame.len() / 2]).unwrap();
    }
    // A fresh connection must still be served promptly.
    let mut stream = connect(&server);
    stream
        .write_all(&classify_frame(0, 4, vec![0.1; 12]))
        .unwrap();
    assert_eq!(read_response(&mut stream).status, Status::Ok);
    let report = server.stop();
    assert_eq!(report.served(), 1);
}

#[test]
fn slow_loris_partial_frame_is_dropped_at_the_read_timeout() {
    let server = spawn_tiny(NetServerOptions {
        read_idle_timeout: Duration::from_millis(150),
        ..NetServerOptions::default()
    });
    let mut loris = connect(&server);
    // Two bytes of a declared 10-byte frame, then silence.
    loris.write_all(&10u32.to_le_bytes()).unwrap();
    loris.write_all(&[1, 2]).unwrap();
    // An idle-but-clean connection (no partial frame) must NOT be dropped.
    let mut idle = connect(&server);
    std::thread::sleep(Duration::from_millis(400));
    let mut buf = [0u8; 64];
    let eof = (0..100).any(|_| matches!(loris.read(&mut buf), Ok(0)));
    assert!(eof, "slow-loris connection should be dropped");
    idle.write_all(&classify_frame(0, 1, vec![0.3; 12]))
        .unwrap();
    assert_eq!(read_response(&mut idle).status, Status::Ok);
    let report = server.stop();
    assert_eq!(report.conns_dropped, 1, "only the loris is dropped");
}

#[test]
fn burst_overload_sheds_explicitly_and_recovers() {
    let server = spawn_tiny(NetServerOptions {
        workers: 1,
        global_inflight: 4,
        soft_inflight: 2,
        per_conn_inflight: 4,
        ..NetServerOptions::default()
    });
    let load = loadgen::run(
        server.addr(),
        &tiny_streams(),
        &LoadOptions {
            rate: 0.0, // burst: everything arrives at t=0
            requests: 96,
            connections: 3,
            seed: 11,
            drain_timeout: Duration::from_secs(20),
        },
    )
    .expect("load run");
    let report = server.stop();
    assert_eq!(load.sent, 96);
    assert!(load.shed > 0, "tiny caps under burst must shed");
    assert_eq!(
        load.ok + load.shed,
        96,
        "every request gets a structured answer"
    );
    assert_eq!(load.errors, 0);
    assert_eq!(report.served(), load.ok);
    assert_eq!(report.shed(), load.shed);
    // Client and server digests cover the same served set.
    assert_eq!(load.digest, report.digest());
    let degrades: u64 = report.tenants.iter().map(|t| t.degrade_events).sum();
    assert!(degrades > 0, "soft watermark must fire under burst");
}

#[test]
fn digests_are_identical_across_connection_and_worker_counts() {
    let run = |workers: usize, connections: usize| {
        let server = spawn_tiny(NetServerOptions {
            workers,
            ..NetServerOptions::default()
        });
        let load = loadgen::run(
            server.addr(),
            &tiny_streams(),
            &LoadOptions {
                rate: 4000.0,
                requests: 128,
                connections,
                seed: 5,
                drain_timeout: Duration::from_secs(20),
            },
        )
        .expect("load run");
        let report = server.stop();
        assert_eq!(load.ok, 128, "sub-saturation run must serve everything");
        assert_eq!(load.digest, report.digest());
        (load.digest, load.fault_bits)
    };
    let a = run(1, 1);
    let b = run(4, 5);
    assert_eq!(a, b, "digest must not depend on workers or connections");
}
