//! Scale workload: a synthetic **million-synapse** MLP through the sharded
//! synaptic store.
//!
//! ```text
//! cargo run --release -p sram_serve --bin scale_bench -- \
//!     [--shards LIST] [--serve N] [--threads N] [--seed S] [--report PATH]
//! ```
//!
//! The paper's network holds ~25k synapses; the ROADMAP's north star is a
//! store that scales orders of magnitude past that. This binary builds the
//! 784-1200-64-10 scale fixture (~1.02 M synaptic words), then for every
//! shard count in `--shards` (default `1,2,4`):
//!
//! * times the bulk **load** through the faulty write path (fans out per
//!   shard on the exec pool),
//! * times a full **bulk read** sweep through the faulty read path (fans
//!   out per bank),
//! * times a **snapshot** corruption pass (fans out per bank),
//! * digests the stored image, the bulk read-out, and the snapshot.
//!
//! The digests must match across shard counts — the sharded store is
//! bit-identical to the monolithic reference, so sharding is a pure
//! throughput knob. `cargo xtask scale-report` runs this binary, renders
//! the scaling table, and (with `--gate`) fails on digest divergence or on
//! the largest shard count loading meaningfully slower than one shard;
//! multi-core CI additionally demands a real speedup (`--min-speedup`).
//!
//! With `--serve N` (default 4) the run finishes by serving N requests
//! through an `InferenceServer` on the million-synapse system at the
//! largest shard count — end-to-end proof that serving works at scale.

use neuro_system::controller::NeuromorphicSystem;
use neuro_system::layout;
use neuro_system::npe::Npe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sram_serve::fixture::{million_synapse_network, scale_memory};
use sram_serve::{byte_digest, InferenceServer, ServeOptions};
use std::time::Instant;

struct Args {
    shards: Vec<usize>,
    serve: usize,
    seed: u64,
    report: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let raw = sram_exec::strip_threads_flag(std::env::args().skip(1).collect())?;
    let mut args = Args {
        shards: vec![1, 2, 4],
        serve: 4,
        seed: 0x5CA1_EB01,
        report: None,
    };
    let mut it = raw.into_iter();
    while let Some(flag) = it.next() {
        let mut value_of = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--shards" => {
                let list = value_of("--shards")?;
                args.shards = list
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| "invalid --shards list (e.g. 1,2,4)".to_string())?;
                if args.shards.is_empty() || args.shards.contains(&0) {
                    return Err("--shards needs positive counts".into());
                }
            }
            "--serve" => {
                args.serve = value_of("--serve")?
                    .parse()
                    .map_err(|_| "invalid --serve value")?;
            }
            "--seed" => {
                args.seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed value")?;
            }
            "--report" => args.report = Some(value_of("--report")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn format_ms(ns: u128) -> String {
    format!("{:.1} ms", ns as f64 / 1e6)
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!(
            "usage: scale_bench [--shards LIST] [--serve N] [--threads N] [--seed S] \
             [--report PATH]"
        );
        std::process::exit(2);
    });

    println!("== scale_bench — million-synapse sharded synaptic store ==");
    let network = million_synapse_network();
    let image = layout::flatten(&network);
    let words = image.len();
    println!(
        "fixture: 784-1200-64-10 MLP, {words} synaptic words, {} workers\n",
        sram_exec::effective_threads()
    );

    let mut kv = String::new();
    kv.push_str(&format!("words={words}\n"));
    kv.push_str(&format!(
        "threads={}\nshard_counts={}\n",
        sram_exec::effective_threads(),
        args.shards
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",")
    ));

    println!(
        "{:<8} {:>12} {:>12} {:>12}  digest",
        "shards", "load", "bulk read", "snapshot"
    );
    for &shards in &args.shards {
        let mut memory = scale_memory(&network, args.seed, shards);
        let t = Instant::now();
        memory.load(&image);
        let load_ns = t.elapsed().as_nanos();

        let t = Instant::now();
        let (bulk, fault_bits) = memory.read_bulk(args.seed ^ 0xB17);
        let bulk_ns = t.elapsed().as_nanos();

        let t = Instant::now();
        let (snapshot, stats) = memory.corrupt_snapshot(args.seed ^ 0x5A9);
        let snapshot_ns = t.elapsed().as_nanos();

        // One digest over everything observable: stored image, faulty
        // bulk read-out, snapshot corruption, fault accounting.
        let mut combined = memory.raw_image();
        combined.extend_from_slice(&bulk);
        combined.extend_from_slice(&snapshot);
        combined.extend_from_slice(&fault_bits.to_le_bytes());
        combined.extend_from_slice(&(stats.total() as u64).to_le_bytes());
        let digest = byte_digest(&combined);

        println!(
            "{shards:<8} {:>12} {:>12} {:>12}  {digest:016x}",
            format_ms(load_ns),
            format_ms(bulk_ns),
            format_ms(snapshot_ns),
        );
        kv.push_str(&format!(
            "load_ns_{shards}={load_ns}\nbulk_ns_{shards}={bulk_ns}\n\
             snapshot_ns_{shards}={snapshot_ns}\ndigest_{shards}={digest:016x}\n\
             fault_bits_{shards}={fault_bits}\n"
        ));
    }

    if args.serve > 0 {
        let &max_shards = args.shards.iter().max().expect("non-empty shard list");
        let memory = scale_memory(&network, args.seed, max_shards);
        let system = NeuromorphicSystem::new(&network, memory, Npe::new(network.format));
        let mut rng = StdRng::seed_from_u64(args.seed);
        let requests: Vec<Vec<f32>> = (0..args.serve)
            .map(|_| (0..784).map(|_| rng.gen::<f32>()).collect())
            .collect();
        let server = InferenceServer::new(system, ServeOptions::default());
        let t = Instant::now();
        let report = server.serve(&requests);
        let serve_ns = t.elapsed().as_nanos();
        println!(
            "\nserved {} requests through the {max_shards}-shard million-synapse system \
             in {} ({:.1} ms/inference, digest {:016x})",
            report.requests(),
            format_ms(serve_ns),
            serve_ns as f64 / 1e6 / report.requests().max(1) as f64,
            report.digest()
        );
        kv.push_str(&format!(
            "serve_requests={}\nserve_ns={serve_ns}\nserve_digest={:016x}\n",
            report.requests(),
            report.digest()
        ));
    }

    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, &kv) {
            eprintln!("could not write report {path}: {e}");
            std::process::exit(1);
        }
        println!("report written to {path}");
    }
}
