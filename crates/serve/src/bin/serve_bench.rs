//! Load generator for the inference serving layer.
//!
//! ```text
//! cargo run --release -p sram_serve --bin serve_bench -- \
//!     [--requests N] [--threads N] [--batch B] [--seed S] \
//!     [--report PATH] [--predictions PATH]
//! ```
//!
//! Builds the standard serving fixture — a small trained digit classifier
//! stored in the paper's hybrid (3,5) memory at 0.65 V, characterized
//! through the memoized `characterize_paper_cells` cache — then fires
//! `--requests` classifications through the queue → micro-batcher → worker
//! pipeline and prints a throughput/latency/energy table.
//!
//! Determinism: predictions depend only on `--seed` and the request index,
//! never on `--threads` or `--batch`. The `serve-load` CI job runs this
//! binary at 1 and 4 workers and fails if the prediction digests differ.
//!
//! `--report` writes a machine-readable `key=value` file (consumed by
//! `cargo xtask serve-report`); `--predictions` writes the raw prediction
//! vector, one class index per line, for byte-level diffing.

use hybrid_sram::config::MemoryConfig;
use hybrid_sram::framework::Framework;
use neuro_system::controller::NeuromorphicSystem;
use neuro_system::energy::{system_inference_energy, SystemEnergyModel};
use neuro_system::npe::Npe;
use sram_array::power::PowerConvention;
use sram_bitcell::characterize::CharacterizationOptions;
use sram_device::process::Technology;
use sram_device::units::Volt;
use sram_serve::fixture::{request_stream, trained_digit_network};
use sram_serve::{drowsy_plan, DrowsyPolicy, InferenceServer, ServeOptions};
use std::time::Instant;

struct Args {
    requests: usize,
    max_batch: usize,
    seed: u64,
    report: Option<String>,
    predictions: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let raw = sram_exec::strip_threads_flag(std::env::args().skip(1).collect())?;
    let mut args = Args {
        requests: 512,
        max_batch: 16,
        seed: 0xBA7C_4ED0,
        report: None,
        predictions: None,
    };
    let mut it = raw.into_iter();
    while let Some(flag) = it.next() {
        let mut value_of = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--requests" => {
                args.requests = value_of("--requests")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("invalid --requests value")?;
            }
            "--batch" => {
                args.max_batch = value_of("--batch")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("invalid --batch value")?;
            }
            "--seed" => {
                args.seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed value")?;
            }
            "--report" => args.report = Some(value_of("--report")?),
            "--predictions" => args.predictions = Some(value_of("--predictions")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn format_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!(
            "usage: serve_bench [--requests N] [--threads N] [--batch B] [--seed S] \
             [--report PATH] [--predictions PATH]"
        );
        std::process::exit(2);
    });

    println!("== serve_bench — batched inference over the hybrid 8T-6T memory ==");
    let t0 = Instant::now();

    // The serving fixture: characterization through the process-wide memo
    // cache, a small trained classifier, the paper's hybrid (3,5) layout at
    // an aggressively scaled 0.65 V supply.
    let tech = Technology::ptm_22nm();
    let char_options = CharacterizationOptions {
        vdds: vec![Volt::new(0.95), Volt::new(0.75), Volt::new(0.65)],
        mc_samples: 40,
        ..CharacterizationOptions::quick()
    };
    let framework = Framework::new(&tech, &char_options);
    let config = MemoryConfig::Hybrid {
        msb_8t: 3,
        vdd: Volt::new(0.65),
    };

    let (network, test_set) = trained_digit_network();

    let memory = framework.build_memory(&network, &config, args.seed);
    let system = NeuromorphicSystem::new(&network, memory, Npe::new(network.format));
    let power = framework.power_report(&network, &config, PowerConvention::IsoThroughput);
    let energy = system_inference_energy(
        &power,
        system.macs_per_inference(),
        &SystemEnergyModel::default(),
        config.vdd(),
    );
    let plan = drowsy_plan(&tech, &network, &config, &DrowsyPolicy::default());

    let server = InferenceServer::new(
        system,
        ServeOptions {
            workers: 0, // --threads / SRAM_REPRO_THREADS / autodetect
            max_batch: args.max_batch,
            base_seed: args.seed,
        },
    )
    .with_energy(energy)
    .with_drowsy(plan, power.leakage_power);

    // The request stream: test images cycled to the requested length.
    let requests = request_stream(&test_set, args.requests);
    println!(
        "fixture ready in {:.1} s — {} requests, {} workers, batch ≤ {}, config {}\n",
        t0.elapsed().as_secs_f64(),
        args.requests,
        server.workers(),
        args.max_batch,
        config,
    );

    let report = server.serve(&requests);

    let energy_per_inf = report
        .energy_per_inference
        .as_ref()
        .map(|e| e.energy.total().joules())
        .unwrap_or(0.0);
    let standby = report.standby_leakage.map(|w| w.watts()).unwrap_or(0.0);
    let digest = report.digest();
    println!("workers            {}", report.workers);
    println!("requests           {}", report.requests());
    println!(
        "wall time          {}",
        format_ns(report.wall.as_nanos() as u64)
    );
    println!("throughput         {:.1} req/s", report.throughput_rps());
    println!("read bandwidth     {:.3e} words/s", report.words_per_sec());
    println!("latency p50        {}", format_ns(report.latency.p50_ns()));
    println!("latency p99        {}", format_ns(report.latency.p99_ns()));
    println!("energy/inference   {:.3} nJ", energy_per_inf * 1e9);
    println!("drowsy standby     {:.3} µW", standby * 1e6);
    println!(
        "observed BER       {:.3e}  ({} fault bits / {} words read)",
        report.observed_bit_error_rate(),
        report.fault_bits,
        report.words_read
    );
    println!(
        "micro-batches      {} (largest {})",
        report.batches, report.max_batch_observed
    );
    println!(
        "memory shards      {} (reads/shard {:?})",
        server.system().memory().shard_count(),
        report.shard_reads
    );
    // Per-shard drowsy accounting: shards the request stream touched stay
    // at the serving supply, idle shards retain at their own DRV-derived
    // voltages.
    let hot_standby = server.drowsy_plan().map(|plan| {
        let retention = plan.shard_retention(server.system().memory());
        let awake: Vec<bool> = report.shard_reads.iter().map(|&r| r > 0).collect();
        let scale = plan.partial_standby_scale(&retention, &awake);
        (power.leakage_power.watts() * scale, awake)
    });
    if let Some((watts, awake)) = &hot_standby {
        println!(
            "hot-shard standby  {:.3} µW ({}/{} shards awake)",
            watts * 1e6,
            awake.iter().filter(|&&a| a).count(),
            awake.len()
        );
    }
    println!("prediction digest  {digest:016x}");

    if let Some(path) = &args.report {
        let text = format!(
            "workers={}\nrequests={}\nwall_ns={}\nthroughput_rps={:.3}\n\
             words_per_sec={:.3}\n\
             p50_ns={}\np99_ns={}\nenergy_per_inference_j={:.6e}\n\
             standby_leakage_w={:.6e}\nfault_bits={}\nwords_read={}\n\
             observed_ber={:.6e}\nbatches={}\nmax_batch_observed={}\nshards={}\ndigest={:016x}\n",
            report.workers,
            report.requests(),
            report.wall.as_nanos(),
            report.throughput_rps(),
            report.words_per_sec(),
            report.latency.p50_ns(),
            report.latency.p99_ns(),
            energy_per_inf,
            standby,
            report.fault_bits,
            report.words_read,
            report.observed_bit_error_rate(),
            report.batches,
            report.max_batch_observed,
            server.system().memory().shard_count(),
            digest,
        );
        let text = match &hot_standby {
            Some((watts, _)) => format!("{text}hot_shard_standby_w={watts:.6e}\n"),
            None => text,
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("could not write report {path}: {e}");
            std::process::exit(1);
        }
        println!("report written to {path}");
    }
    if let Some(path) = &args.predictions {
        let mut text = String::with_capacity(report.predictions.len() * 2);
        for p in &report.predictions {
            text.push_str(&p.to_string());
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("could not write predictions {path}: {e}");
            std::process::exit(1);
        }
        println!("predictions written to {path}");
    }
}
