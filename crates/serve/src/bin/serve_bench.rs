//! Load generator for the inference serving layer.
//!
//! ```text
//! cargo run --release -p sram_serve --bin serve_bench -- \
//!     [--requests N] [--threads N] [--batch B] [--seed S] \
//!     [--report PATH] [--predictions PATH] \
//!     [--chaos] [--waves W] [--chaos-seed S]
//! ```
//!
//! Builds the standard serving fixture — a small trained digit classifier
//! stored in the paper's hybrid (3,5) memory at 0.65 V, characterized
//! through the memoized `characterize_paper_cells` cache — then fires
//! `--requests` classifications through the queue → micro-batcher → worker
//! pipeline and prints a throughput/latency/energy table.
//!
//! `--chaos` switches to the resilience scenario instead: the request
//! stream is split into `--waves` waves and served **three times** over
//! identical fixtures — healthy (no degradation), protected (a seeded
//! [`ChaosSchedule`] degrades one canonical shard mid-load while the
//! resilience loop scrubs and repairs between waves), and unprotected
//! (same degradation, no maintenance). The report compares accuracy, tail
//! latency, and the scrub/repair counters; `cargo xtask chaos-report
//! --gate` turns two thread counts of it into the CI resilience gate.
//!
//! Determinism: predictions depend only on `--seed` (and in chaos mode
//! `--chaos-seed`) and the request index, never on `--threads` or
//! `--batch`. The `serve-load` CI job runs this binary at 1 and 4 workers
//! and fails if the prediction digests differ; the `resilience` job does
//! the same for all three chaos digests.
//!
//! `--report` writes a machine-readable `key=value` file (consumed by
//! `cargo xtask serve-report` / `chaos-report`); `--predictions` writes
//! the raw prediction vector, one class index per line, for byte-level
//! diffing.

use fault_inject::chaos::ChaosSchedule;
use hybrid_sram::config::MemoryConfig;
use hybrid_sram::framework::Framework;
use neural::dataset::Dataset;
use neural::quant::QuantizedMlp;
use neuro_system::controller::NeuromorphicSystem;
use neuro_system::energy::{system_inference_energy, SystemEnergyModel};
use neuro_system::layout;
use neuro_system::npe::Npe;
use sram_array::power::PowerConvention;
use sram_bitcell::characterize::CharacterizationOptions;
use sram_device::process::Technology;
use sram_device::units::Volt;
use sram_serve::fixture::{request_stream, trained_digit_network};
use sram_serve::{
    apply_chaos_event, drowsy_plan, prediction_digest, DrowsyPolicy, InferenceServer,
    LatencyHistogram, ResilienceConfig, ResilienceController, ServeOptions,
};
use std::time::Instant;

struct Args {
    requests: usize,
    max_batch: usize,
    seed: u64,
    report: Option<String>,
    predictions: Option<String>,
    chaos: bool,
    waves: usize,
    chaos_seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let raw = sram_exec::strip_threads_flag(std::env::args().skip(1).collect())?;
    let mut args = Args {
        requests: 512,
        max_batch: 16,
        seed: 0xBA7C_4ED0,
        report: None,
        predictions: None,
        chaos: false,
        waves: 4,
        chaos_seed: 0xC4A0_5EED,
    };
    let mut it = raw.into_iter();
    while let Some(flag) = it.next() {
        let mut value_of = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--requests" => {
                args.requests = value_of("--requests")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("invalid --requests value")?;
            }
            "--batch" => {
                args.max_batch = value_of("--batch")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("invalid --batch value")?;
            }
            "--seed" => {
                args.seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed value")?;
            }
            "--report" => args.report = Some(value_of("--report")?),
            "--predictions" => args.predictions = Some(value_of("--predictions")?),
            "--chaos" => args.chaos = true,
            "--waves" => {
                args.waves = value_of("--waves")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("invalid --waves value")?;
            }
            "--chaos-seed" => {
                args.chaos_seed = value_of("--chaos-seed")?
                    .parse()
                    .map_err(|_| "invalid --chaos-seed value")?;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn format_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// One chaos scenario's merged outcome across all request waves.
struct ScenarioOutcome {
    predictions: Vec<usize>,
    latency: LatencyHistogram,
    accuracy: f64,
    workers: usize,
    shards: usize,
    counters: Option<sram_serve::ResilienceCounters>,
}

/// Serves the request stream in waves over a freshly built fixture:
/// `schedule` events strike at their wave boundaries, and `protected`
/// scenarios run the resilience maintenance window (scrub → repair →
/// governor) before each wave is served. Healthy runs pass no schedule;
/// unprotected runs take the schedule without protection. All three use
/// identical wave splits and per-wave seed streams, so their predictions
/// are comparable request-for-request and deterministic at any worker
/// count.
#[allow(clippy::too_many_arguments)]
fn run_scenario(
    framework: &Framework,
    network: &QuantizedMlp,
    config: &MemoryConfig,
    test_set: &Dataset,
    requests: &[Vec<f32>],
    args: &Args,
    schedule: Option<&ChaosSchedule>,
    protected: bool,
) -> ScenarioOutcome {
    let memory = framework.build_memory(network, config, args.seed);
    let mut system = NeuromorphicSystem::new(network, memory, Npe::new(network.format));
    let controller = protected.then(|| {
        ResilienceController::new(
            system.memory_mut(),
            &layout::flatten(network),
            ResilienceConfig::default(),
        )
    });
    let mut server = InferenceServer::new(
        system,
        ServeOptions {
            workers: 0,
            max_batch: args.max_batch,
            base_seed: args.seed,
        },
    );
    if let Some(controller) = controller {
        server = server.with_resilience(controller);
    }

    let n = requests.len();
    let chunk = n.div_ceil(args.waves).max(1);
    let mut predictions = Vec::with_capacity(n);
    let mut latency = LatencyHistogram::new();
    let mut workers = 0usize;
    for wave in 0..args.waves {
        let lo = (wave * chunk).min(n);
        let hi = ((wave + 1) * chunk).min(n);
        if let Some(schedule) = schedule {
            for event in schedule.events_at(wave) {
                apply_chaos_event(server.system_mut().memory_mut(), event);
            }
        }
        if protected {
            server.maintain();
        }
        if lo == hi {
            continue;
        }
        let report = server.serve_configured(
            &requests[lo..hi],
            &ServeOptions {
                workers: 0,
                max_batch: args.max_batch,
                base_seed: sram_exec::derive_seed(args.seed, wave as u64),
            },
        );
        workers = report.workers;
        predictions.extend_from_slice(&report.predictions);
        latency.merge(&report.latency);
    }
    let correct = predictions
        .iter()
        .enumerate()
        .filter(|&(i, &p)| p == test_set.label(i % test_set.len()))
        .count();
    let accuracy = if n == 0 {
        0.0
    } else {
        correct as f64 / n as f64
    };
    ScenarioOutcome {
        predictions,
        latency,
        accuracy,
        workers,
        shards: server.system().memory().shard_count(),
        counters: server.resilience().map(|r| r.counters()),
    }
}

/// The `--chaos` mode: healthy / protected / unprotected runs over the
/// degraded-shard schedule, compared side by side.
fn run_chaos(args: &Args) {
    println!("== serve_bench --chaos — degraded-shard resilience scenario ==");
    let t0 = Instant::now();
    let tech = Technology::ptm_22nm();
    let char_options = CharacterizationOptions {
        vdds: vec![Volt::new(0.95), Volt::new(0.75), Volt::new(0.65)],
        mc_samples: 40,
        ..CharacterizationOptions::quick()
    };
    let framework = Framework::new(&tech, &char_options);
    let config = MemoryConfig::Hybrid {
        msb_8t: 3,
        vdd: Volt::new(0.65),
    };
    let (network, test_set) = trained_digit_network();
    let requests = request_stream(&test_set, args.requests);
    let total_words: usize = layout::bank_words(&network).iter().sum();
    // Canonical 4-way partition, 16 stuck rows: the schedule names global
    // addresses only, so it is identical however the store is sharded.
    let probe = framework.build_memory(&network, &config, args.seed);
    let schedule = ChaosSchedule::degraded_shard(
        args.chaos_seed,
        total_words,
        4,
        args.waves,
        probe.words_per_row(),
        16,
    );
    println!(
        "fixture ready in {:.1} s — {} requests over {} waves, {} chaos events, config {}\n",
        t0.elapsed().as_secs_f64(),
        args.requests,
        args.waves,
        schedule.events.len(),
        config,
    );

    let healthy = run_scenario(
        &framework, &network, &config, &test_set, &requests, args, None, false,
    );
    let protected = run_scenario(
        &framework,
        &network,
        &config,
        &test_set,
        &requests,
        args,
        Some(&schedule),
        true,
    );
    let unprotected = run_scenario(
        &framework,
        &network,
        &config,
        &test_set,
        &requests,
        args,
        Some(&schedule),
        false,
    );

    let row = |name: &str, s: &ScenarioOutcome| {
        println!(
            "{name:<12} accuracy {:>6.3}  p99 {:>10}  digest {:016x}",
            s.accuracy,
            format_ns(s.latency.p99_ns()),
            prediction_digest(&s.predictions),
        );
    };
    row("healthy", &healthy);
    row("protected", &protected);
    row("unprotected", &unprotected);
    let c = protected
        .counters
        .clone()
        .expect("protected scenario carries counters");
    println!(
        "\nbist: {} weak words / {} weak bits (digest {:016x})",
        c.bist_weak_words, c.bist_weak_bits, c.bist_digest
    );
    println!(
        "scrub: {} sweeps, {} corrected words / {} bits, {} uncorrectable",
        c.scrub_sweeps, c.corrected_words, c.corrected_bits, c.uncorrectable_words
    );
    println!(
        "repair: {} rows remapped, {} spares free; governor boosts {}",
        c.rows_repaired, c.spare_rows_free, c.governor_boosts
    );

    if let Some(path) = &args.report {
        let text = format!(
            "mode=chaos\nworkers={}\nrequests={}\nwaves={}\nshards={}\n\
             healthy_accuracy={:.6}\nprotected_accuracy={:.6}\nunprotected_accuracy={:.6}\n\
             healthy_p99_ns={}\nprotected_p99_ns={}\nunprotected_p99_ns={}\n\
             healthy_digest={:016x}\nprotected_digest={:016x}\nunprotected_digest={:016x}\n\
             bist_weak_words={}\nbist_weak_bits={}\nbist_digest={:016x}\n\
             scrub_sweeps={}\ncorrected_words={}\ncorrected_bits={}\nuncorrectable_words={}\n\
             rows_repaired={}\nspare_rows_free={}\ngovernor_boosts={}\n",
            healthy.workers,
            args.requests,
            args.waves,
            healthy.shards,
            healthy.accuracy,
            protected.accuracy,
            unprotected.accuracy,
            healthy.latency.p99_ns(),
            protected.latency.p99_ns(),
            unprotected.latency.p99_ns(),
            prediction_digest(&healthy.predictions),
            prediction_digest(&protected.predictions),
            prediction_digest(&unprotected.predictions),
            c.bist_weak_words,
            c.bist_weak_bits,
            c.bist_digest,
            c.scrub_sweeps,
            c.corrected_words,
            c.corrected_bits,
            c.uncorrectable_words,
            c.rows_repaired,
            c.spare_rows_free,
            c.governor_boosts,
        );
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("could not write report {path}: {e}");
            std::process::exit(1);
        }
        println!("report written to {path}");
    }
    if let Some(path) = &args.predictions {
        let mut text = String::new();
        for s in [&healthy, &protected, &unprotected] {
            for p in &s.predictions {
                text.push_str(&p.to_string());
                text.push('\n');
            }
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("could not write predictions {path}: {e}");
            std::process::exit(1);
        }
        println!("predictions written to {path}");
    }
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!(
            "usage: serve_bench [--requests N] [--threads N] [--batch B] [--seed S] \
             [--report PATH] [--predictions PATH] [--chaos] [--waves W] [--chaos-seed S]"
        );
        std::process::exit(2);
    });
    if args.chaos {
        run_chaos(&args);
        return;
    }

    println!("== serve_bench — batched inference over the hybrid 8T-6T memory ==");
    let t0 = Instant::now();

    // The serving fixture: characterization through the process-wide memo
    // cache, a small trained classifier, the paper's hybrid (3,5) layout at
    // an aggressively scaled 0.65 V supply.
    let tech = Technology::ptm_22nm();
    let char_options = CharacterizationOptions {
        vdds: vec![Volt::new(0.95), Volt::new(0.75), Volt::new(0.65)],
        mc_samples: 40,
        ..CharacterizationOptions::quick()
    };
    let framework = Framework::new(&tech, &char_options);
    let config = MemoryConfig::Hybrid {
        msb_8t: 3,
        vdd: Volt::new(0.65),
    };

    let (network, test_set) = trained_digit_network();

    let memory = framework.build_memory(&network, &config, args.seed);
    let system = NeuromorphicSystem::new(&network, memory, Npe::new(network.format));
    let power = framework.power_report(&network, &config, PowerConvention::IsoThroughput);
    let energy = system_inference_energy(
        &power,
        system.macs_per_inference(),
        &SystemEnergyModel::default(),
        config.vdd(),
    );
    let plan = drowsy_plan(&tech, &network, &config, &DrowsyPolicy::default());

    let server = InferenceServer::new(
        system,
        ServeOptions {
            workers: 0, // --threads / SRAM_REPRO_THREADS / autodetect
            max_batch: args.max_batch,
            base_seed: args.seed,
        },
    )
    .with_energy(energy)
    .with_drowsy(plan, power.leakage_power);

    // The request stream: test images cycled to the requested length.
    let requests = request_stream(&test_set, args.requests);
    println!(
        "fixture ready in {:.1} s — {} requests, {} workers, batch ≤ {}, config {}\n",
        t0.elapsed().as_secs_f64(),
        args.requests,
        server.workers(),
        args.max_batch,
        config,
    );

    let report = server.serve(&requests);

    let energy_per_inf = report
        .energy_per_inference
        .as_ref()
        .map(|e| e.energy.total().joules())
        .unwrap_or(0.0);
    let standby = report.standby_leakage.map(|w| w.watts()).unwrap_or(0.0);
    let digest = report.digest();
    println!("workers            {}", report.workers);
    println!("requests           {}", report.requests());
    println!(
        "wall time          {}",
        format_ns(report.wall.as_nanos() as u64)
    );
    println!("throughput         {:.1} req/s", report.throughput_rps());
    println!("read bandwidth     {:.3e} words/s", report.words_per_sec());
    println!("latency p50        {}", format_ns(report.latency.p50_ns()));
    println!("latency p99        {}", format_ns(report.latency.p99_ns()));
    println!(
        "queue wait p50/p99 {} / {}",
        format_ns(report.queue_wait.p50_ns()),
        format_ns(report.queue_wait.p99_ns())
    );
    println!(
        "service p50/p99    {} / {}",
        format_ns(report.service.p50_ns()),
        format_ns(report.service.p99_ns())
    );
    println!("energy/inference   {:.3} nJ", energy_per_inf * 1e9);
    println!("drowsy standby     {:.3} µW", standby * 1e6);
    println!(
        "observed BER       {:.3e}  ({} fault bits / {} words read)",
        report.observed_bit_error_rate(),
        report.fault_bits,
        report.words_read
    );
    println!(
        "micro-batches      {} (largest {})",
        report.batches, report.max_batch_observed
    );
    println!(
        "memory shards      {} (reads/shard {:?})",
        server.system().memory().shard_count(),
        report.shard_reads
    );
    // Per-shard drowsy accounting: shards the request stream touched stay
    // at the serving supply, idle shards retain at their own DRV-derived
    // voltages.
    let hot_standby = server.drowsy_plan().map(|plan| {
        let retention = plan.shard_retention(server.system().memory());
        let awake: Vec<bool> = report.shard_reads.iter().map(|&r| r > 0).collect();
        let scale = plan.partial_standby_scale(&retention, &awake);
        (power.leakage_power.watts() * scale, awake)
    });
    if let Some((watts, awake)) = &hot_standby {
        println!(
            "hot-shard standby  {:.3} µW ({}/{} shards awake)",
            watts * 1e6,
            awake.iter().filter(|&&a| a).count(),
            awake.len()
        );
    }
    println!("prediction digest  {digest:016x}");

    if let Some(path) = &args.report {
        let text = format!(
            "workers={}\nrequests={}\nwall_ns={}\nthroughput_rps={:.3}\n\
             words_per_sec={:.3}\n\
             p50_ns={}\np99_ns={}\n\
             queue_p50_ns={}\nqueue_p99_ns={}\nservice_p50_ns={}\nservice_p99_ns={}\n\
             energy_per_inference_j={:.6e}\n\
             standby_leakage_w={:.6e}\nfault_bits={}\nwords_read={}\n\
             observed_ber={:.6e}\nbatches={}\nmax_batch_observed={}\nshards={}\ndigest={:016x}\n",
            report.workers,
            report.requests(),
            report.wall.as_nanos(),
            report.throughput_rps(),
            report.words_per_sec(),
            report.latency.p50_ns(),
            report.latency.p99_ns(),
            report.queue_wait.p50_ns(),
            report.queue_wait.p99_ns(),
            report.service.p50_ns(),
            report.service.p99_ns(),
            energy_per_inf,
            standby,
            report.fault_bits,
            report.words_read,
            report.observed_bit_error_rate(),
            report.batches,
            report.max_batch_observed,
            server.system().memory().shard_count(),
            digest,
        );
        let text = match &hot_standby {
            Some((watts, _)) => format!("{text}hot_shard_standby_w={watts:.6e}\n"),
            None => text,
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("could not write report {path}: {e}");
            std::process::exit(1);
        }
        println!("report written to {path}");
    }
    if let Some(path) = &args.predictions {
        let mut text = String::with_capacity(report.predictions.len() * 2);
        for p in &report.predictions {
            text.push_str(&p.to_string());
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("could not write predictions {path}: {e}");
            std::process::exit(1);
        }
        println!("predictions written to {path}");
    }
}
