//! The standard serving fixture: one trained digit classifier shared by
//! the `serve_bench` load generator, the serving benches, and the
//! determinism tests, so the network (and therefore the request cost) they
//! measure is literally the same. Consumers wrap it in their own memory —
//! framework-characterized for the load generator, hand-set fault rates
//! for tests and benches — because *what* the memory corrupts is the
//! variable under test; *what* is being classified must not be.

use neural::dataset::{synth, Dataset};
use neural::network::Mlp;
use neural::quant::{Encoding, QuantizedMlp};
use neural::train::{train, TrainOptions};

/// Trains the fixture classifier (784-24-10 on the synthetic digit set)
/// and returns it quantized, along with the held-out test split the
/// request streams draw from. Deterministic: fixed data/split/init seeds.
pub fn trained_digit_network() -> (QuantizedMlp, Dataset) {
    let data = synth::generate_default(400, 21);
    let (train_set, test_set) = data.split(0.75, 3);
    let mut mlp = Mlp::new(&[784, 24, 10], 5);
    train(
        &mut mlp,
        &train_set,
        &TrainOptions {
            epochs: 8,
            ..TrainOptions::default()
        },
    );
    (
        QuantizedMlp::from_mlp(&mlp, Encoding::TwosComplement),
        test_set,
    )
}

/// Cycles the fixture's test images into a request stream of length `n`.
pub fn request_stream(test_set: &Dataset, n: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| test_set.image(i % test_set.len()).to_vec())
        .collect()
}
