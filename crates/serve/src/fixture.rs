//! The standard serving fixture: one trained digit classifier shared by
//! the `serve_bench` load generator, the serving benches, and the
//! determinism tests, so the network (and therefore the request cost) they
//! measure is literally the same. Consumers wrap it in their own memory —
//! framework-characterized for the load generator, hand-set fault rates
//! for tests and benches — because *what* the memory corrupts is the
//! variable under test; *what* is being classified must not be.

use fault_inject::model::{BitErrorRates, WordFailureModel};
use fault_inject::protection::ProtectionPolicy;
use neural::dataset::{synth, Dataset};
use neural::network::Mlp;
use neural::quant::{Encoding, QuantizedMlp};
use neural::train::{train, TrainOptions};
use neuro_system::layout;
use sram_array::organization::{SubArrayDims, SynapticMemoryMap};
use sram_array::sharded::ShardedMemory;

/// Trains the fixture classifier (784-24-10 on the synthetic digit set)
/// and returns it quantized, along with the held-out test split the
/// request streams draw from. Deterministic: fixed data/split/init seeds.
pub fn trained_digit_network() -> (QuantizedMlp, Dataset) {
    let data = synth::generate_default(400, 21);
    let (train_set, test_set) = data.split(0.75, 3);
    let mut mlp = Mlp::new(&[784, 24, 10], 5);
    train(
        &mut mlp,
        &train_set,
        &TrainOptions {
            epochs: 8,
            ..TrainOptions::default()
        },
    );
    (
        QuantizedMlp::from_mlp(&mlp, Encoding::TwosComplement),
        test_set,
    )
}

/// Cycles the fixture's test images into a request stream of length `n`.
pub fn request_stream(test_set: &Dataset, n: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| test_set.image(i % test_set.len()).to_vec())
        .collect()
}

/// The scale fixture: a synthetic 784-1200-64-10 MLP holding ~1.02 million
/// synaptic words — three orders of magnitude past the paper's network.
/// Untrained (random but seeded init): the scale workload measures the
/// *memory*, so what the weights classify is irrelevant; what matters is
/// that every byte is deterministic.
pub fn million_synapse_network() -> QuantizedMlp {
    QuantizedMlp::from_mlp(
        &Mlp::new(&[784, 1200, 64, 10], 11),
        Encoding::TwosComplement,
    )
}

/// A sharded hybrid (3,5) memory sized for `network` with hand-set fault
/// rates (no circuit characterization — the scale workload exercises the
/// store, not the solver stack). Returned empty; callers time the
/// [`load`](ShardedMemory::load) themselves.
pub fn scale_memory(network: &QuantizedMlp, seed: u64, shards: usize) -> ShardedMemory {
    let words = layout::bank_words(network);
    let policy = ProtectionPolicy::MsbProtected { msb_8t: 3 };
    let map = SynapticMemoryMap::new(&words, &policy, SubArrayDims::PAPER);
    let rates = BitErrorRates {
        read_6t: 0.01,
        write_6t: 0.002,
        read_8t: 0.0,
        write_8t: 0.0,
    };
    let models: Vec<WordFailureModel> = (0..words.len())
        .map(|b| WordFailureModel::new(&rates, &policy.assignment(b)))
        .collect();
    ShardedMemory::new(map, models, seed, shards)
}
