//! # sram-serve — concurrent batched inference serving
//!
//! The ROADMAP's north star is a system that serves heavy traffic, not a
//! single-shot simulator. This crate is the throughput layer over the
//! paper's hybrid 8T-6T synaptic memory: an admission queue with adaptive
//! micro-batching feeding shared-state workers, per-request seed streams so
//! fault injection under load replays the serving-Vdd bit-error rates
//! bit-identically at any worker count, a per-significance-band drowsy
//! voltage policy, and per-request metrics (latency histogram, energy per
//! inference, observed bit-error rate).
//!
//! The pipeline (see [`server`] for the full diagram):
//!
//! ```text
//! requests → admission queue → adaptive micro-batches → workers
//!          → NeuromorphicSystem::classify_request(&self, …)
//!          → SynapticMemory::read_shared(per-request RNG)
//! ```
//!
//! **Determinism contract.** Request `id`'s randomness is
//! `derive_seed(base_seed, id)`; results are slotted by id. Predictions are
//! bit-identical across worker counts and batch sizes — the `serve-load` CI
//! job and this crate's tests pin it. Latency/throughput numbers are wall
//! clock; only their aggregation is order-invariant.
//!
//! The `serve_bench` binary is the load generator (`cargo run --release -p
//! sram_serve --bin serve_bench`), and `cargo xtask serve-report` turns two
//! runs of it into the throughput/latency/energy table CI gates and
//! archives; `scale_bench` + `cargo xtask scale-report` do the same for
//! the sharded store's million-synapse scaling.

#![warn(missing_docs)]

pub mod fixture;
pub mod metrics;
pub mod policy;
pub mod resilience;
pub mod server;

pub use metrics::{byte_digest, prediction_digest, LatencyHistogram};
pub use policy::{
    apply_ber_feedback, drowsy_plan, BandVoltage, DrowsyPlan, DrowsyPolicy, ShardRetention,
};
pub use resilience::{
    apply_chaos_event, BerGovernorConfig, ResilienceConfig, ResilienceController,
    ResilienceCounters,
};
pub use server::{InferenceServer, ServeOptions, ServeReport};
