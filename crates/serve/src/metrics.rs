//! Per-request serving metrics: a log-bucketed latency histogram and the
//! prediction digest the CI determinism gate compares.
//!
//! The histogram is HDR-style: one octave per power of two of nanoseconds,
//! eight sub-buckets per octave (the three bits below the leading one), so
//! any recorded latency lands in a bucket whose width is at most 1/8 of its
//! magnitude — quantile estimates carry ≤ ~6 % relative error at fixed
//! memory (512 counters), independent of how many requests are recorded.
//! Merging histograms is element-wise addition, so per-worker histograms
//! combine associatively and the merged quantiles do not depend on worker
//! count or merge order.

/// Sub-buckets per octave (2^3): latencies keep their top four significant
/// bits.
const SUBS_PER_OCTAVE: usize = 8;

/// Bucket count: 8 exact buckets for 0-7 ns plus 61 octaves × 8 sub-buckets
/// (nanosecond range of a `u64`), rounded up to a power of two.
const BUCKETS: usize = 512;

/// A fixed-size log-bucketed latency histogram (nanoseconds).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket holding `ns`.
fn bucket_index(ns: u64) -> usize {
    if ns < 8 {
        return ns as usize;
    }
    let octave = 63 - ns.leading_zeros() as usize; // >= 3
    let sub = ((ns >> (octave - 3)) & 0x7) as usize;
    8 + (octave - 3) * SUBS_PER_OCTAVE + sub
}

/// Inclusive value range `[lo, hi]` covered by bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < 8 {
        return (idx as u64, idx as u64);
    }
    let octave = 3 + (idx - 8) / SUBS_PER_OCTAVE;
    let sub = ((idx - 8) % SUBS_PER_OCTAVE) as u64;
    let lo = (1u64 << octave) + (sub << (octave - 3));
    // Parenthesized so the top bucket (which ends exactly at `u64::MAX`)
    // does not overflow.
    let hi = lo + ((1u64 << (octave - 3)) - 1);
    (lo, hi)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.total as f64
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (bucket midpoint, clamped to the observed range);
    /// 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.total == 0 {
            return 0;
        }
        // Rank of the requested quantile, 1-based (nearest-rank method).
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let (lo, hi) = bucket_bounds(idx);
                return lo.midpoint(hi).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median latency.
    pub fn p50_ns(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Tail latency.
    pub fn p99_ns(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds every sample of `other` into `self` (element-wise, associative
    /// and commutative — merged quantiles are worker-count invariant).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        if other.total > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
    }
}

/// FNV-1a digest of a prediction vector — the fingerprint `serve_bench`
/// prints and the `serve-load` CI job compares across worker counts.
pub fn prediction_digest(predictions: &[usize]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in predictions {
        for byte in (p as u64).to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// FNV-1a fingerprint of a byte image (memory contents, bulk-read sweeps);
/// the `scale_bench` shard-equivalence gate compares these across shard
/// counts.
pub fn byte_digest(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        // Every value maps into a bucket whose bounds contain it.
        for ns in (0u64..4096).chain([u64::MAX, 1 << 40, (1 << 40) + 12345]) {
            let idx = bucket_index(ns);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= ns && ns <= hi, "ns {ns} bucket {idx} [{lo},{hi}]");
            assert!(idx < BUCKETS);
        }
        // Bucket bounds tile without gaps over the reachable range (the
        // last reachable bucket is the one holding `u64::MAX`; indices
        // beyond it are padding up to the power-of-two array size).
        let last = bucket_index(u64::MAX);
        assert!(last < BUCKETS);
        for idx in 0..last {
            let (_, hi) = bucket_bounds(idx);
            let (lo_next, _) = bucket_bounds(idx + 1);
            assert_eq!(hi + 1, lo_next, "gap after bucket {idx}");
        }
        assert_eq!(bucket_bounds(last).1, u64::MAX);
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(ns * 1000); // 1 µs .. 1 ms, uniform
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.p50_ns() as f64;
        let p99 = h.p99_ns() as f64;
        assert!((p50 / 500_000.0 - 1.0).abs() < 0.10, "p50 {p50}");
        assert!((p99 / 990_000.0 - 1.0).abs() < 0.10, "p99 {p99}");
        assert_eq!(h.min_ns(), 1000);
        assert_eq!(h.max_ns(), 1_000_000);
        assert!((h.mean_ns() - 500_500.0).abs() < 1.0);
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything_in_one() {
        let mut all = LatencyHistogram::new();
        let mut parts: Vec<LatencyHistogram> = (0..4).map(|_| LatencyHistogram::new()).collect();
        for i in 0..10_000u64 {
            let ns = i * 37 + 11;
            all.record(ns);
            parts[(i % 4) as usize].record(ns);
        }
        // Merge in two different orders; both must equal the monolith.
        let mut fwd = LatencyHistogram::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = LatencyHistogram::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        for h in [&fwd, &rev] {
            assert_eq!(h.count(), all.count());
            assert_eq!(h.p50_ns(), all.p50_ns());
            assert_eq!(h.p99_ns(), all.p99_ns());
            assert_eq!(h.min_ns(), all.min_ns());
            assert_eq!(h.max_ns(), all.max_ns());
        }
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn digest_is_order_and_value_sensitive() {
        assert_eq!(prediction_digest(&[1, 2, 3]), prediction_digest(&[1, 2, 3]));
        assert_ne!(prediction_digest(&[1, 2, 3]), prediction_digest(&[3, 2, 1]));
        assert_ne!(prediction_digest(&[1, 2, 3]), prediction_digest(&[1, 2, 4]));
        assert_ne!(prediction_digest(&[]), prediction_digest(&[0]));
    }
}
