//! Per-significance-band drowsy voltage policy.
//!
//! The serving layer keeps the whole synaptic memory powered between
//! requests; the paper's economics say that standby leakage — not access
//! energy — then dominates at low duty cycle. The classic countermeasure is
//! *drowsy retention*: idle banks drop to a voltage just above their
//! data-retention voltage (DRV) and pop back up for accesses. Because the
//! hybrid memory splits every word into a significant (8T) and an
//! insignificant (6T) band, the two bands can be drowsed independently:
//! each gets `max(floor, DRV + guard)` for *its own* cell flavor, measured
//! on the same sized cells the characterization tables describe
//! ([`sram_bitcell::characterize::paper_cells`]).
//!
//! The DRV measurement (a bisection over hold-SNM bistability) is
//! deterministic per technology and shared process-wide through a
//! [`MemoCache`], the same memoization pattern as
//! `characterize_paper_cells_cached` — every server, bench, and test pays
//! for one measurement.

use fault_inject::model::WORD_BITS;
use hybrid_sram::config::MemoryConfig;
use neural::quant::QuantizedMlp;
use neuro_system::layout;
use sram_array::sharded::ShardedMemory;
use sram_bitcell::retention::retention_voltage;
use sram_bitcell::topology::{SixTCell, SixTSizing};
use sram_device::process::Technology;
use sram_device::units::Volt;
use sram_exec::MemoCache;
use std::sync::OnceLock;

/// Knobs of the drowsy policy.
#[derive(Debug, Clone, PartialEq)]
pub struct DrowsyPolicy {
    /// Guard band added above the measured DRV (process/temperature slack).
    pub guard_margin: Volt,
    /// Hard floor: never drowse below this, however low the DRV.
    pub floor: Volt,
}

impl Default for DrowsyPolicy {
    fn default() -> Self {
        Self {
            guard_margin: Volt::new(0.10),
            floor: Volt::new(0.30),
        }
    }
}

/// Drowsy operating point of one significance band of one bank.
#[derive(Debug, Clone, PartialEq)]
pub struct BandVoltage {
    /// Bank index (one per ANN layer).
    pub bank: usize,
    /// Words in the bank.
    pub words: usize,
    /// Bits per word held in 8T cells (the significant band).
    pub bits_8t: usize,
    /// Drowsy voltage of the bank's 6T (insignificant) band.
    pub drowsy_6t: Volt,
    /// Drowsy voltage of the bank's 8T (significant) band.
    pub drowsy_8t: Volt,
}

/// The full memory's drowsy plan at one serving operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct DrowsyPlan {
    /// Active (serving) supply.
    pub active_vdd: Volt,
    /// Measured nominal DRV of the 6T cell.
    pub drv_6t: Volt,
    /// Measured nominal DRV of the 8T cell's storage latch.
    pub drv_8t: Volt,
    /// Per-bank band voltages.
    pub bands: Vec<BandVoltage>,
}

/// Drowsy retention state of one *shard* of the sharded store: the shard's
/// 8T/6T bit composition (computed from its overlap with the logical
/// banks) plus the retention voltages its two bands drop to when the shard
/// drowses. Shards are independent power domains — each one retains at its
/// own DRV-derived voltages and wakes on its own traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRetention {
    /// Shard index.
    pub shard: usize,
    /// Words in the shard.
    pub words: usize,
    /// 8T (significant-band) bits in the shard.
    pub bits_8t: usize,
    /// 6T (insignificant-band) bits in the shard.
    pub bits_6t: usize,
    /// Drowsy voltage of the shard's 6T bits.
    pub drowsy_6t: Volt,
    /// Drowsy voltage of the shard's 8T bits.
    pub drowsy_8t: Volt,
}

impl ShardRetention {
    /// Leakage of this shard relative to holding it at `active_vdd`
    /// (first-order `I_leak ∝ VDD` proxy), when drowsed.
    fn drowsy_leakage_weight(&self, active_vdd: Volt) -> f64 {
        let active = active_vdd.volts();
        self.bits_8t as f64 * (self.drowsy_8t.volts() / active).min(1.0)
            + self.bits_6t as f64 * (self.drowsy_6t.volts() / active).min(1.0)
    }

    /// Total bits in the shard.
    fn bits(&self) -> usize {
        self.bits_8t + self.bits_6t
    }
}

impl DrowsyPlan {
    /// Standby leakage relative to holding everything at `active_vdd`,
    /// using the first-order `I_leak ∝ VDD` proxy, weighted by bit count
    /// per band. Multiply the array's reported leakage power by this to get
    /// the drowsy standby power.
    pub fn standby_leakage_scale(&self) -> f64 {
        let active = self.active_vdd.volts();
        let mut weighted = 0.0;
        let mut bits = 0.0;
        for band in &self.bands {
            let n8 = (band.words * band.bits_8t) as f64;
            let n6 = (band.words * (WORD_BITS - band.bits_8t)) as f64;
            weighted += n8 * (band.drowsy_8t.volts() / active).min(1.0);
            weighted += n6 * (band.drowsy_6t.volts() / active).min(1.0);
            bits += n8 + n6;
        }
        if bits == 0.0 {
            1.0
        } else {
            weighted / bits
        }
    }

    /// Projects the per-bank plan onto the physical shard layout of
    /// `memory`: each shard's 8T/6T bit composition is the union of its
    /// overlaps with the logical banks, and its retention voltages are the
    /// worst case (maximum) over the overlapped banks, since the shard
    /// drowses as one power domain.
    ///
    /// # Panics
    ///
    /// Panics if the plan's bank layout does not match the memory map.
    pub fn shard_retention(&self, memory: &ShardedMemory) -> Vec<ShardRetention> {
        let bank_words: Vec<usize> = memory.map().banks().iter().map(|b| b.words).collect();
        assert_eq!(
            bank_words,
            self.bands.iter().map(|b| b.words).collect::<Vec<_>>(),
            "drowsy plan banks do not match the memory map"
        );
        // Cumulative bank start addresses.
        let mut bank_starts = Vec::with_capacity(self.bands.len());
        let mut acc = 0usize;
        for words in &bank_words {
            bank_starts.push(acc);
            acc += words;
        }
        memory
            .shard_ranges()
            .into_iter()
            .map(|range| {
                let shard_end = range.start + range.words;
                let mut r = ShardRetention {
                    shard: range.shard,
                    words: range.words,
                    bits_8t: 0,
                    bits_6t: 0,
                    drowsy_6t: Volt::new(0.0),
                    drowsy_8t: Volt::new(0.0),
                };
                for (band, (&bstart, &bwords)) in
                    self.bands.iter().zip(bank_starts.iter().zip(&bank_words))
                {
                    let overlap = shard_end
                        .min(bstart + bwords)
                        .saturating_sub(range.start.max(bstart));
                    if overlap == 0 {
                        continue;
                    }
                    r.bits_8t += overlap * band.bits_8t;
                    r.bits_6t += overlap * (WORD_BITS - band.bits_8t);
                    r.drowsy_6t = Volt::new(r.drowsy_6t.volts().max(band.drowsy_6t.volts()));
                    r.drowsy_8t = Volt::new(r.drowsy_8t.volts().max(band.drowsy_8t.volts()));
                }
                r
            })
            .collect()
    }

    /// Standby leakage scale when only some shards drowse: shards marked
    /// awake hold `active_vdd` (weight 1.0), the rest retain at their own
    /// band voltages. With every shard drowsy this equals
    /// [`standby_leakage_scale`](Self::standby_leakage_scale) when all
    /// banks share one retention voltage per cell flavor (the common
    /// case); where a shard spans banks with *different* voltages,
    /// [`shard_retention`](Self::shard_retention) holds the whole shard at
    /// the worst-case voltage, so the per-shard scale is ≥ the per-band
    /// one — a shard drowses as one power domain and cannot split a bank's
    /// voltage mid-range.
    ///
    /// # Panics
    ///
    /// Panics if `awake.len()` differs from `retention.len()`.
    pub fn partial_standby_scale(&self, retention: &[ShardRetention], awake: &[bool]) -> f64 {
        assert_eq!(
            retention.len(),
            awake.len(),
            "one awake flag per shard required"
        );
        let mut weighted = 0.0;
        let mut bits = 0.0;
        for (shard, &is_awake) in retention.iter().zip(awake) {
            let n = shard.bits() as f64;
            weighted += if is_awake {
                n
            } else {
                shard.drowsy_leakage_weight(self.active_vdd)
            };
            bits += n;
        }
        if bits == 0.0 {
            1.0
        } else {
            weighted / bits
        }
    }
}

/// Applies the BER-fed feedback of the resilience governor to a per-shard
/// retention plan: each shard's drowsy voltages rise by `boosts[shard]`
/// steps of `step`, capped at `active_vdd`. A shard whose scrubber keeps
/// correcting retention upsets is held further above its DRV (paying
/// leakage for integrity); after enough quiet scrub windows the governor
/// walks the boost back down and the shard re-earns its deep-drowsy
/// savings.
///
/// # Panics
///
/// Panics if `boosts.len()` differs from `retention.len()` or `step` is
/// negative.
pub fn apply_ber_feedback(
    retention: &[ShardRetention],
    boosts: &[u32],
    step: Volt,
    active_vdd: Volt,
) -> Vec<ShardRetention> {
    assert_eq!(
        retention.len(),
        boosts.len(),
        "one boost level per shard required"
    );
    assert!(step.volts() >= 0.0, "negative boost step");
    retention
        .iter()
        .zip(boosts)
        .map(|(r, &level)| {
            let raise = |v: Volt| {
                Volt::new((v.volts() + f64::from(level) * step.volts()).min(active_vdd.volts()))
            };
            ShardRetention {
                drowsy_6t: raise(r.drowsy_6t),
                drowsy_8t: raise(r.drowsy_8t),
                ..r.clone()
            }
        })
        .collect()
}

/// Nominal DRVs of the paper's two cells, memoized per technology (the
/// bisection runs ~33 hold-SNM solves; every consumer shares one run).
fn cached_drvs(tech: &Technology) -> (Volt, Volt) {
    static CACHE: OnceLock<MemoCache<String, (Volt, Volt)>> = OnceLock::new();
    let key = format!("{tech:?}");
    let pair = CACHE.get_or_init(MemoCache::new).get_or_compute(key, || {
        let lo = Volt::new(0.10);
        let hi = Volt::new(0.95);
        // The 8T read stack never disturbs the latch, so its retention is
        // set by the same cross-coupled pair at the write-optimized sizing
        // (the latch `paper_cells` builds the 8T around).
        let cell_6t = SixTCell::new(tech, &SixTSizing::paper_baseline());
        let latch_8t = SixTCell::new(tech, &SixTSizing::write_optimized());
        (
            retention_voltage(&cell_6t, lo, hi),
            retention_voltage(&latch_8t, lo, hi),
        )
    });
    *pair
}

/// Builds the per-significance-band drowsy plan for `network` stored under
/// `config`: every bank's 8T and 6T bands retain at
/// `max(policy.floor, DRV + policy.guard_margin)`, clamped to the active
/// supply.
///
/// # Examples
///
/// Idle banks retain below the serving supply, so drowsy standby always
/// saves leakage (DRVs are memoized process-wide — repeated calls are
/// cheap):
///
/// ```
/// use hybrid_sram::config::MemoryConfig;
/// use neural::network::Mlp;
/// use neural::quant::{Encoding, QuantizedMlp};
/// use sram_device::process::Technology;
/// use sram_device::units::Volt;
/// use sram_serve::{drowsy_plan, DrowsyPolicy};
///
/// let q = QuantizedMlp::from_mlp(&Mlp::new(&[12, 8, 4], 2), Encoding::TwosComplement);
/// let config = MemoryConfig::Hybrid { msb_8t: 3, vdd: Volt::new(0.85) };
/// let plan = drowsy_plan(&Technology::ptm_22nm(), &q, &config, &DrowsyPolicy::default());
/// assert_eq!(plan.bands.len(), 2, "one band set per weight layer");
/// let scale = plan.standby_leakage_scale();
/// assert!(scale > 0.0 && scale < 1.0, "drowsy retention must save standby leakage");
/// ```
///
/// # Panics
///
/// Panics if the guard margin or floor are negative.
pub fn drowsy_plan(
    tech: &Technology,
    network: &QuantizedMlp,
    config: &MemoryConfig,
    policy: &DrowsyPolicy,
) -> DrowsyPlan {
    assert!(policy.guard_margin.volts() >= 0.0, "negative guard margin");
    assert!(policy.floor.volts() >= 0.0, "negative floor");
    let (drv_6t, drv_8t) = cached_drvs(tech);
    let active_vdd = config.vdd();
    let drowsy_of = |drv: Volt| {
        Volt::new(
            (drv.volts() + policy.guard_margin.volts())
                .max(policy.floor.volts())
                .min(active_vdd.volts()),
        )
    };
    let drowsy_6t = drowsy_of(drv_6t);
    let drowsy_8t = drowsy_of(drv_8t);
    let protection = config.policy();
    let bands = layout::bank_words(network)
        .iter()
        .enumerate()
        .map(|(bank, &words)| BandVoltage {
            bank,
            words,
            bits_8t: protection.assignment(bank).protected_count(),
            drowsy_6t,
            drowsy_8t,
        })
        .collect();
    DrowsyPlan {
        active_vdd,
        drv_6t,
        drv_8t,
        bands,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::network::Mlp;
    use neural::quant::Encoding;

    fn small_network() -> QuantizedMlp {
        QuantizedMlp::from_mlp(&Mlp::new(&[16, 8, 4], 3), Encoding::TwosComplement)
    }

    #[test]
    fn drowsy_voltages_sit_between_drv_and_active() {
        let tech = Technology::ptm_22nm();
        let q = small_network();
        let config = MemoryConfig::Hybrid {
            msb_8t: 3,
            vdd: Volt::new(0.70),
        };
        let plan = drowsy_plan(&tech, &q, &config, &DrowsyPolicy::default());
        assert_eq!(plan.bands.len(), 2);
        for band in &plan.bands {
            assert_eq!(band.bits_8t, 3);
            for v in [band.drowsy_6t, band.drowsy_8t] {
                assert!(v.volts() <= plan.active_vdd.volts());
                assert!(v.volts() >= DrowsyPolicy::default().floor.volts());
            }
            // The guard band holds unless the floor or the active supply
            // clamps it.
            assert!(
                band.drowsy_6t.volts() + 1e-12
                    >= (plan.drv_6t.volts() + 0.10)
                        .max(0.30)
                        .min(plan.active_vdd.volts())
            );
        }
        // Nominal DRVs must sit below the paper's operating floor, or
        // drowsy retention would be pointless.
        assert!(plan.drv_6t.volts() < 0.60);
        assert!(plan.drv_8t.volts() < 0.60);
    }

    #[test]
    fn standby_scale_saves_leakage_and_respects_weighting() {
        let tech = Technology::ptm_22nm();
        let q = small_network();
        let config = MemoryConfig::Hybrid {
            msb_8t: 3,
            vdd: Volt::new(0.95),
        };
        let plan = drowsy_plan(&tech, &q, &config, &DrowsyPolicy::default());
        let scale = plan.standby_leakage_scale();
        assert!(scale > 0.0 && scale < 1.0, "scale {scale}");

        // A zero-margin, zero-floor policy drowses deeper (never shallower).
        let aggressive = drowsy_plan(
            &tech,
            &q,
            &config,
            &DrowsyPolicy {
                guard_margin: Volt::new(0.0),
                floor: Volt::new(0.0),
            },
        );
        assert!(aggressive.standby_leakage_scale() <= scale);
    }

    #[test]
    fn all_6t_config_has_empty_significant_bands() {
        let tech = Technology::ptm_22nm();
        let q = small_network();
        let config = MemoryConfig::Base6T {
            vdd: Volt::new(0.65),
        };
        let plan = drowsy_plan(&tech, &q, &config, &DrowsyPolicy::default());
        assert!(plan.bands.iter().all(|b| b.bits_8t == 0));
        let scale = plan.standby_leakage_scale();
        assert!(scale > 0.0 && scale <= 1.0);
    }

    #[test]
    fn shard_retention_covers_the_layout_and_mirrors_the_full_scale() {
        use fault_inject::model::WordFailureModel;
        let tech = Technology::ptm_22nm();
        let q = small_network();
        let config = MemoryConfig::Hybrid {
            msb_8t: 3,
            vdd: Volt::new(0.80),
        };
        let plan = drowsy_plan(&tech, &q, &config, &DrowsyPolicy::default());
        let map = sram_array::organization::SynapticMemoryMap::new(
            &neuro_system::layout::bank_words(&q),
            &config.policy(),
            sram_array::organization::SubArrayDims::PAPER,
        );
        let models = vec![WordFailureModel::ideal(); 2];
        for shards in [1usize, 2, 3, 5] {
            let memory = ShardedMemory::new(map.clone(), models.clone(), 1, shards);
            let retention = plan.shard_retention(&memory);
            assert_eq!(retention.len(), memory.shard_count());
            let total_bits: usize = retention.iter().map(|r| r.bits()).sum();
            assert_eq!(total_bits, map.total_words() * WORD_BITS);
            // All-drowsy partial scale equals the per-band full scale:
            // every bank here shares one (3,5) assignment, so the shard
            // projection loses nothing.
            let awake = vec![false; retention.len()];
            let partial = plan.partial_standby_scale(&retention, &awake);
            assert!(
                (partial - plan.standby_leakage_scale()).abs() < 1e-12,
                "{shards} shards: {partial} vs {}",
                plan.standby_leakage_scale()
            );
            // Waking every shard costs full leakage; waking some sits in
            // between.
            assert!(
                (plan.partial_standby_scale(&retention, &vec![true; retention.len()]) - 1.0).abs()
                    < 1e-12
            );
            if retention.len() > 1 {
                let mut one_awake = vec![false; retention.len()];
                one_awake[0] = true;
                let mixed = plan.partial_standby_scale(&retention, &one_awake);
                assert!(mixed > partial && mixed < 1.0, "mixed {mixed}");
            }
        }
    }

    #[test]
    fn ber_feedback_raises_boosted_shards_and_caps_at_active() {
        let base = ShardRetention {
            shard: 0,
            words: 100,
            bits_8t: 300,
            bits_6t: 500,
            drowsy_6t: Volt::new(0.40),
            drowsy_8t: Volt::new(0.45),
        };
        let retention = vec![
            base.clone(),
            ShardRetention {
                shard: 1,
                ..base.clone()
            },
        ];
        let active = Volt::new(0.65);
        let out = apply_ber_feedback(&retention, &[0, 2], Volt::new(0.05), active);
        assert_eq!(out[0].drowsy_6t, Volt::new(0.40), "unboosted shard intact");
        assert!((out[1].drowsy_6t.volts() - 0.50).abs() < 1e-12);
        assert!((out[1].drowsy_8t.volts() - 0.55).abs() < 1e-12);
        // Enough boosts saturate at the active supply.
        let maxed = apply_ber_feedback(&retention, &[0, 100], Volt::new(0.05), active);
        assert_eq!(maxed[1].drowsy_6t, active);
        assert_eq!(maxed[1].drowsy_8t, active);
        // Boosted retention always leaks at least as much.
        let awake = vec![false; 2];
        let plan = DrowsyPlan {
            active_vdd: active,
            drv_6t: Volt::new(0.2),
            drv_8t: Volt::new(0.2),
            bands: vec![],
        };
        assert!(
            plan.partial_standby_scale(&out, &awake)
                >= plan.partial_standby_scale(&retention, &awake)
        );
    }

    #[test]
    fn drv_memoization_is_stable() {
        let tech = Technology::ptm_22nm();
        let (a6, a8) = cached_drvs(&tech);
        let (b6, b8) = cached_drvs(&tech);
        assert_eq!(a6, b6);
        assert_eq!(a8, b8);
    }
}
