//! The serving-side resilience loop: boot-time BIST, online ECC
//! scrubbing, spare-row repair, and BER-fed drowsy feedback.
//!
//! ```text
//!        boot                         between batches
//!  ┌──────────────┐      ┌──────────────────────────────────────┐
//!  │ march BIST   │      │ scrub sweep (SECDED decode per word) │
//!  │  weak-cell   │      │   corrected bits ──▶ BER governor    │
//!  │  map         │      │   flagged rows  ──▶ spare-row repair │
//!  └──────┬───────┘      └──────────────┬───────────────────────┘
//!         │ weak rows ≥ threshold       │ boosts per shard
//!         ▼                             ▼
//!   spare-row repair            retention-voltage feedback
//!   (golden data)               (policy::apply_ber_feedback)
//! ```
//!
//! A [`ResilienceController`] owns the ECC sidecar, the BIST report, the
//! spare-row budget, and the per-shard governor state. It is built once
//! over a freshly loaded store ([`ResilienceController::new`]) and then
//! driven between serving batches ([`ResilienceController::maintain`]).
//! Every decision it makes — weak-cell map, scrub counters, repair
//! choices — is a pure function of the store's observed image and the
//! configured seeds, so the whole loop is bit-identical at any worker or
//! shard count (pinned by the `resilience` determinism tests and the
//! chaos gate).

use crate::policy::{apply_ber_feedback, DrowsyPlan, ShardRetention};
use fault_inject::chaos::ChaosEvent;
use sram_array::bist::{run_bist, BistReport};
use sram_array::scrub::{scrub_pass, EccSidecar, ScrubOutcome};
use sram_array::sharded::ShardedMemory;
use sram_device::units::Volt;
use std::collections::BTreeSet;

/// Knobs of the per-shard BER-fed drowsy governor.
#[derive(Debug, Clone, PartialEq)]
pub struct BerGovernorConfig {
    /// Corrected-BER (corrected bits / shard data bits per sweep) above
    /// which a shard's retention voltage is boosted one step.
    pub raise_threshold: f64,
    /// Consecutive quiet sweeps (BER at or below threshold) before one
    /// boost step is walked back.
    pub quiet_windows: u32,
    /// Boost ceiling per shard.
    pub max_boosts: u32,
    /// Voltage added per boost step (capped at the active supply).
    pub step: Volt,
}

impl Default for BerGovernorConfig {
    fn default() -> Self {
        Self {
            raise_threshold: 1e-4,
            quiet_windows: 2,
            max_boosts: 4,
            step: Volt::new(0.05),
        }
    }
}

/// Configuration of the whole resilience loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Seed of the BIST read-pass streams.
    pub bist_seed: u64,
    /// Run the ECC scrub sweep during [`ResilienceController::maintain`].
    pub scrub: bool,
    /// Remap flagged/weak rows onto spare rows.
    pub repair: bool,
    /// Spare-row budget (rows, shared across the whole store).
    pub spare_rows: usize,
    /// Weak bits a row needs before boot-time BIST repair claims a spare.
    pub bist_weak_bits_threshold: u32,
    /// BER-fed drowsy governor knobs.
    pub governor: BerGovernorConfig,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            bist_seed: 0xB157_5EED,
            scrub: true,
            repair: true,
            spare_rows: 128,
            bist_weak_bits_threshold: 8,
            governor: BerGovernorConfig::default(),
        }
    }
}

/// Snapshot of the resilience loop's counters (carried in
/// [`ServeReport`](crate::ServeReport) and the chaos-gate table).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResilienceCounters {
    /// Weak words the boot BIST mapped.
    pub bist_weak_words: usize,
    /// Weak bits the boot BIST mapped.
    pub bist_weak_bits: u64,
    /// FNV-1a digest of the weak-cell map.
    pub bist_digest: u64,
    /// Scrub sweeps run so far.
    pub scrub_sweeps: u64,
    /// Words corrected across all sweeps.
    pub corrected_words: u64,
    /// Bits corrected across all sweeps.
    pub corrected_bits: u64,
    /// Uncorrectable words seen across all sweeps.
    pub uncorrectable_words: u64,
    /// Rows remapped onto spares (boot + online).
    pub rows_repaired: usize,
    /// Spare rows still available.
    pub spare_rows_free: usize,
    /// Governor boost steps issued across all sweeps.
    pub governor_boosts: u64,
}

/// The live resilience state over one serving store. See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct ResilienceController {
    config: ResilienceConfig,
    bist: BistReport,
    sidecar: EccSidecar,
    /// The post-boot observed image — the baseline the serving accuracy is
    /// measured against, the sidecar protects, and repairs restore.
    reference: Vec<u8>,
    /// Row starts already remapped onto spares.
    repaired: BTreeSet<usize>,
    spare_rows_free: usize,
    /// Current boost level per shard.
    boosts: Vec<u32>,
    /// Consecutive quiet sweeps per shard.
    quiet: Vec<u32>,
    scrub_sweeps: u64,
    corrected_words: u64,
    corrected_bits: u64,
    uncorrectable_words: u64,
    governor_boosts: u64,
}

impl ResilienceController {
    /// Boots the resilience loop over a freshly loaded store: runs the
    /// march BIST, remaps rows whose weak-bit count reaches the configured
    /// threshold onto spares holding `golden` (the pre-quantization-load
    /// flattened weights — boot repair restores true values for the
    /// weakest rows), snapshots the resulting observed image as the
    /// protected reference, and builds the ECC sidecar over it.
    ///
    /// # Panics
    ///
    /// Panics if `golden` is shorter than the store.
    pub fn new(memory: &mut ShardedMemory, golden: &[u8], config: ResilienceConfig) -> Self {
        assert!(
            golden.len() >= memory.len(),
            "golden image must cover the store"
        );
        let bist = run_bist(memory, config.bist_seed);
        let mut repaired = BTreeSet::new();
        let mut spare_rows_free = config.spare_rows;
        if config.repair {
            for row in bist.weak_rows(memory, config.bist_weak_bits_threshold) {
                if spare_rows_free == 0 {
                    break;
                }
                let (start, words) = memory.row_span(row);
                memory.repair_row(start, &golden[start..start + words]);
                repaired.insert(start);
                spare_rows_free -= 1;
            }
        }
        let reference: Vec<u8> = (0..memory.len()).map(|i| memory.read_raw(i)).collect();
        let sidecar = EccSidecar::protect(memory);
        let shards = memory.shard_count();
        Self {
            config,
            bist,
            sidecar,
            reference,
            repaired,
            spare_rows_free,
            boosts: vec![0; shards],
            quiet: vec![0; shards],
            scrub_sweeps: 0,
            corrected_words: 0,
            corrected_bits: 0,
            uncorrectable_words: 0,
            governor_boosts: 0,
        }
    }

    /// One maintenance window (run between serving batches): scrub sweep,
    /// spare-row repair of the rows the sweep flagged (restored from the
    /// protected reference), and the per-shard governor update. Returns
    /// the sweep's outcome (`None` when scrubbing is disabled).
    pub fn maintain(&mut self, memory: &mut ShardedMemory) -> Option<ScrubOutcome> {
        if !self.config.scrub {
            return None;
        }
        let outcome = scrub_pass(memory, &mut self.sidecar, true);
        self.scrub_sweeps += 1;
        self.corrected_words += outcome.corrected_words as u64;
        self.corrected_bits += outcome.corrected_bits;
        self.uncorrectable_words += outcome.uncorrectable_words as u64;
        if self.config.repair {
            for &row in &outcome.flagged_rows {
                if self.spare_rows_free == 0 {
                    break;
                }
                if self.repaired.contains(&row) {
                    continue;
                }
                let (start, words) = memory.row_span(row);
                memory.repair_row(start, &self.reference[start..start + words]);
                self.repaired.insert(start);
                self.spare_rows_free -= 1;
            }
        }
        // Governor: each shard's corrected-BER this sweep either boosts
        // its retention voltage or counts toward walking a boost back.
        let ranges = memory.shard_ranges();
        for (shard, range) in ranges.iter().enumerate() {
            let bits = (range.words * 8) as f64;
            let ber = if bits > 0.0 {
                outcome.per_shard_corrected_bits[shard] as f64 / bits
            } else {
                0.0
            };
            if ber > self.config.governor.raise_threshold {
                if self.boosts[shard] < self.config.governor.max_boosts {
                    self.boosts[shard] += 1;
                    self.governor_boosts += 1;
                }
                self.quiet[shard] = 0;
            } else {
                self.quiet[shard] += 1;
                if self.quiet[shard] >= self.config.governor.quiet_windows && self.boosts[shard] > 0
                {
                    self.boosts[shard] -= 1;
                    self.quiet[shard] = 0;
                }
            }
        }
        Some(outcome)
    }

    /// The boot-time weak-cell map.
    pub fn bist(&self) -> &BistReport {
        &self.bist
    }

    /// Current boost level per shard.
    pub fn boosts(&self) -> &[u32] {
        &self.boosts
    }

    /// The configuration the controller was booted with.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// The per-shard retention plan of `plan` over `memory`, with the
    /// governor's current boosts applied — the voltages the drowsy shards
    /// actually hold.
    pub fn adjusted_retention(
        &self,
        plan: &DrowsyPlan,
        memory: &ShardedMemory,
    ) -> Vec<ShardRetention> {
        let retention = plan.shard_retention(memory);
        apply_ber_feedback(
            &retention,
            &self.boosts,
            self.config.governor.step,
            plan.active_vdd,
        )
    }

    /// Counter snapshot.
    pub fn counters(&self) -> ResilienceCounters {
        ResilienceCounters {
            bist_weak_words: self.bist.weak_words(),
            bist_weak_bits: self.bist.weak_bits(),
            bist_digest: self.bist.digest(),
            scrub_sweeps: self.scrub_sweeps,
            corrected_words: self.corrected_words,
            corrected_bits: self.corrected_bits,
            uncorrectable_words: self.uncorrectable_words,
            rows_repaired: self.repaired.len(),
            spare_rows_free: self.spare_rows_free,
            governor_boosts: self.governor_boosts,
        }
    }
}

/// Applies one chaos-schedule event to the store: persistent corruption
/// for [`ChaosEvent::ElevatedBer`] and [`ChaosEvent::RetentionDrop`], a
/// stuck-at overlay for [`ChaosEvent::StuckRows`]. Returns the number of
/// bits flipped (stuck spans report zero — they corrupt sensing, not
/// storage).
pub fn apply_chaos_event(memory: &mut ShardedMemory, event: &ChaosEvent) -> u64 {
    match *event {
        ChaosEvent::ElevatedBer {
            start,
            words,
            per_bit,
            seed,
        }
        | ChaosEvent::RetentionDrop {
            start,
            words,
            per_bit,
            seed,
        } => memory.corrupt_stored_range(start, words, seed, per_bit),
        ChaosEvent::StuckRows {
            start,
            words,
            or_mask,
            and_mask,
        } => {
            memory.inject_stuck_range(start, words, or_mask, and_mask);
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_inject::model::{BitErrorRates, WordFailureModel};
    use fault_inject::protection::ProtectionPolicy;
    use sram_array::organization::{SubArrayDims, SynapticMemoryMap};

    fn store(write_p: f64, shards: usize) -> (ShardedMemory, Vec<u8>) {
        let policy = ProtectionPolicy::Uniform6T;
        let map = SynapticMemoryMap::new(&[512], &policy, SubArrayDims::PAPER);
        let rates = BitErrorRates {
            read_6t: 0.0,
            write_6t: write_p,
            read_8t: 0.0,
            write_8t: 0.0,
        };
        let model = WordFailureModel::new(&rates, &policy.assignment(0));
        let mut m = ShardedMemory::new(map, vec![model], 31, shards);
        let golden: Vec<u8> = (0..512).map(|i| (i * 7) as u8).collect();
        m.load(&golden);
        (m, golden)
    }

    #[test]
    fn boot_repairs_weak_rows_from_golden() {
        let (mut m, golden) = store(0.08, 2);
        let config = ResilienceConfig {
            bist_weak_bits_threshold: 1,
            ..ResilienceConfig::default()
        };
        let ctl = ResilienceController::new(&mut m, &golden, config);
        let counters = ctl.counters();
        assert!(counters.bist_weak_words > 0, "8% write BER must map cells");
        assert!(counters.rows_repaired > 0);
        assert_eq!(
            counters.spare_rows_free,
            128 - counters.rows_repaired,
            "budget accounting"
        );
        // Repaired rows read golden data verbatim.
        for (start, words) in m.repaired_rows() {
            for (i, &g) in golden.iter().enumerate().skip(start).take(words) {
                assert_eq!(m.read_raw(i), g);
            }
        }
    }

    #[test]
    fn maintain_heals_degradation_and_boosts_the_victim_shard() {
        let (mut m, golden) = store(0.0, 4);
        let mut ctl = ResilienceController::new(&mut m, &golden, ResilienceConfig::default());
        assert_eq!(ctl.counters().bist_weak_words, 0);
        // Degrade shard 1 (words 128..256) hard.
        let flipped = m.corrupt_stored_range(128, 128, 0xBAD, 0.01);
        assert!(flipped > 0);
        let outcome = ctl.maintain(&mut m).expect("scrub enabled");
        assert!(outcome.corrected_words > 0);
        // The healed image matches the reference everywhere repair and
        // correction could reach.
        let c = ctl.counters();
        assert_eq!(c.scrub_sweeps, 1);
        assert!(c.corrected_bits >= outcome.corrected_bits);
        assert_eq!(ctl.boosts()[0], 0, "untouched shard stays deep-drowsy");
        assert_eq!(ctl.boosts()[1], 1, "victim shard boosts");
        // Quiet sweeps walk the boost back.
        ctl.maintain(&mut m);
        ctl.maintain(&mut m);
        assert_eq!(ctl.boosts()[1], 0, "quiet windows decay the boost");
        // After healing, the observed image equals the reference except
        // for rows the spare budget could not cover (none here).
        let observed: Vec<u8> = (0..m.len()).map(|i| m.read_raw(i)).collect();
        assert_eq!(observed, golden, "ideal store heals to golden");
    }

    #[test]
    fn stuck_rows_get_repaired_through_spares() {
        let (mut m, golden) = store(0.0, 2);
        let mut ctl = ResilienceController::new(&mut m, &golden, ResilienceConfig::default());
        apply_chaos_event(
            &mut m,
            &ChaosEvent::StuckRows {
                start: 64,
                words: 64,
                or_mask: 0xFF,
                and_mask: 0xFF,
            },
        );
        ctl.maintain(&mut m);
        let c = ctl.counters();
        assert!(c.uncorrectable_words > 0, "stuck rows defeat SECDED");
        assert_eq!(c.rows_repaired, 2, "both stuck rows remapped");
        for (i, &g) in golden.iter().enumerate().take(128).skip(64) {
            assert_eq!(m.read_raw(i), g, "spares bypass stuck cells");
        }
    }

    #[test]
    fn disabled_scrub_and_repair_do_nothing() {
        let (mut m, golden) = store(0.0, 2);
        let config = ResilienceConfig {
            scrub: false,
            repair: false,
            ..ResilienceConfig::default()
        };
        let mut ctl = ResilienceController::new(&mut m, &golden, config);
        m.corrupt_stored_range(0, 512, 1, 0.01);
        assert!(ctl.maintain(&mut m).is_none());
        let c = ctl.counters();
        assert_eq!(c.scrub_sweeps, 0);
        assert_eq!(c.rows_repaired, 0);
        assert!(m.repaired_rows().is_empty());
    }

    #[test]
    fn controller_decisions_are_invariant_across_shard_counts() {
        let run = |shards: usize| {
            let (mut m, golden) = store(0.02, shards);
            let mut ctl = ResilienceController::new(&mut m, &golden, ResilienceConfig::default());
            m.corrupt_stored_range(100, 300, 0xD06, 0.008);
            ctl.maintain(&mut m);
            let c = ctl.counters();
            let observed: Vec<u8> = (0..m.len()).map(|i| m.read_raw(i)).collect();
            (c, m.repaired_rows(), observed)
        };
        let (ref_c, ref_rows, ref_obs) = run(1);
        for shards in [2usize, 4, 7] {
            let (c, rows, obs) = run(shards);
            assert_eq!(c.bist_digest, ref_c.bist_digest, "{shards} shards");
            assert_eq!(c.corrected_words, ref_c.corrected_words);
            assert_eq!(c.corrected_bits, ref_c.corrected_bits);
            assert_eq!(c.uncorrectable_words, ref_c.uncorrectable_words);
            assert_eq!(c.rows_repaired, ref_c.rows_repaired);
            assert_eq!(rows, ref_rows, "repair decisions are address-keyed");
            assert_eq!(obs, ref_obs, "healed image is shard-invariant");
        }
    }
}
