//! The inference server: admission queue → adaptive micro-batcher →
//! shared-state controller → synaptic memory.
//!
//! # Architecture
//!
//! ```text
//!  requests ──▶ admission queue ──▶ worker 0 ─┐
//!  (id 0..n)    (Mutex<VecDeque>)  worker 1 ─┼─▶ NeuromorphicSystem (&self)
//!                    ▲             worker W ─┘     └─▶ ShardedMemory::read_shared
//!                    │ adaptive micro-batch pop          (per-request RNG,
//!                                                         shard-routed)
//! ```
//!
//! Workers pull *micro-batches* off the queue instead of single requests:
//! one lock acquisition admits up to [`ServeOptions::max_batch`] requests,
//! and the batch shares one warm [`InferContext`] (scratch buffers persist,
//! the RNG is re-seeded per request). The batch size adapts to backlog —
//! `queue_len / (2·workers)`, clamped to `[1, max_batch]` — so a deep queue
//! amortizes lock traffic while a draining queue falls back to single
//! requests and keeps the stragglers balanced across workers.
//!
//! # Determinism
//!
//! The server follows the `sram_exec` design rules: request `id` draws its
//! fault randomness from `derive_seed(base_seed, id)` (via
//! [`InferContext::for_request`]/[`InferContext::reset`]) and results are
//! collected into slots by `id`. Predictions are therefore **bit-identical
//! at any worker count and any micro-batch size** — the property the
//! `serve-load` CI job pins. Latency numbers are wall-clock and obviously
//! *not* deterministic; only their aggregation (histogram merge) is
//! order-invariant.

use crate::metrics::{prediction_digest, LatencyHistogram};
use crate::policy::DrowsyPlan;
use crate::resilience::{ResilienceController, ResilienceCounters};
use fault_inject::model::WORD_BITS;
use neuro_system::controller::{InferContext, NeuromorphicSystem};
use neuro_system::energy::SystemEnergyReport;
use sram_device::units::Watt;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serving knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Worker threads; 0 resolves like the exec pool
    /// ([`sram_exec::effective_threads`]: `set_threads` override →
    /// `SRAM_REPRO_THREADS` → available parallelism).
    pub workers: usize,
    /// Micro-batch ceiling per queue pop.
    pub max_batch: usize,
    /// Root of the per-request seed streams.
    pub base_seed: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 0,
            max_batch: 16,
            base_seed: 0x5E2F_E5EE_D000_0001,
        }
    }
}

/// Hard ceiling on serving workers, matching the exec pool's guard: a
/// typo'd `SRAM_REPRO_THREADS=50000` must degrade to a big-but-survivable
/// thread count, not die on spawn-resource exhaustion. Predictions are
/// worker-count invariant, so clamping never changes an output.
const MAX_WORKERS: usize = 256;

/// Micro-batch size for the current backlog: split the queue so every
/// worker gets roughly two more turns (bounds tail imbalance at ~half a
/// batch), clamped to `[1, max_batch]`.
pub(crate) fn adaptive_batch(queue_len: usize, workers: usize, max_batch: usize) -> usize {
    (queue_len / (2 * workers.max(1))).clamp(1, max_batch.max(1))
}

/// Everything one `serve` call produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Predicted class per request, in request order.
    pub predictions: Vec<usize>,
    /// End-to-end (admission → completion) latency distribution.
    pub latency: LatencyHistogram,
    /// Queue-wait distribution: admission (t=0 for this closed-batch
    /// server) → the moment a worker starts processing the request. Kept
    /// separate from [`service`](Self::service) so backlog and datapath
    /// cost are not conflated in one histogram.
    pub queue_wait: LatencyHistogram,
    /// Service-time distribution: processing start → completion. For a
    /// batch-amortized pop the batch's members share one fetch, so they
    /// record the batch's service span each.
    pub service: LatencyHistogram,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Micro-batches popped.
    pub batches: usize,
    /// Largest micro-batch observed.
    pub max_batch_observed: usize,
    /// Read-fault bits injected across all requests.
    pub fault_bits: u64,
    /// Memory words read across all requests.
    pub words_read: u64,
    /// Words read per memory shard during the run (counter deltas; assumes
    /// no concurrent `serve` call shares the system).
    pub shard_reads: Vec<u64>,
    /// Per-inference energy/latency model, when configured.
    pub energy_per_inference: Option<SystemEnergyReport>,
    /// Drowsy standby leakage (memory leakage × plan scale), when both the
    /// energy model and a drowsy plan are configured.
    pub standby_leakage: Option<Watt>,
    /// Resilience-loop counters (BIST/scrub/repair/governor), when a
    /// [`ResilienceController`] is attached. Snapshot at report time.
    pub resilience: Option<ResilienceCounters>,
}

impl ServeReport {
    /// Requests served.
    pub fn requests(&self) -> usize {
        self.predictions.len()
    }

    /// Served requests per second of wall time.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests() as f64 / secs
    }

    /// Memory words delivered per second of wall time — the bulk-read
    /// datapath's bandwidth figure. Batch-amortized rows still bill every
    /// logical copy, so this tracks the scalar path's accounting exactly.
    pub fn words_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.words_read as f64 / secs
    }

    /// Injected read-fault bits per bit read — the serving-Vdd bit-error
    /// rate actually observed by the request stream.
    pub fn observed_bit_error_rate(&self) -> f64 {
        let bits = self.words_read.saturating_mul(WORD_BITS as u64);
        if bits == 0 {
            return 0.0;
        }
        self.fault_bits as f64 / bits as f64
    }

    /// Total model energy of the run (requests × per-inference total).
    pub fn total_energy_joules(&self) -> Option<f64> {
        self.energy_per_inference
            .as_ref()
            .map(|e| e.energy.total().joules() * self.requests() as f64)
    }

    /// FNV-1a fingerprint of the prediction vector.
    pub fn digest(&self) -> u64 {
        prediction_digest(&self.predictions)
    }
}

/// A shared-state inference server over one loaded [`NeuromorphicSystem`].
#[derive(Debug)]
pub struct InferenceServer {
    system: NeuromorphicSystem,
    options: ServeOptions,
    energy: Option<SystemEnergyReport>,
    drowsy: Option<DrowsyPlan>,
    /// Memory leakage power at the serving voltage (for drowsy standby
    /// reporting), from the array power rollup.
    memory_leakage: Option<Watt>,
    /// The resilience loop (BIST map, ECC sidecar, spare budget, BER
    /// governor), when attached.
    resilience: Option<ResilienceController>,
}

impl InferenceServer {
    /// Wraps a loaded system.
    pub fn new(system: NeuromorphicSystem, options: ServeOptions) -> Self {
        assert!(options.max_batch > 0, "max_batch must be at least 1");
        Self {
            system,
            options,
            energy: None,
            drowsy: None,
            memory_leakage: None,
            resilience: None,
        }
    }

    /// Attaches a per-inference energy/latency model (builder style).
    pub fn with_energy(mut self, report: SystemEnergyReport) -> Self {
        self.energy = Some(report);
        self
    }

    /// Attaches a drowsy voltage plan plus the memory leakage power it
    /// scales (builder style).
    pub fn with_drowsy(mut self, plan: DrowsyPlan, memory_leakage: Watt) -> Self {
        self.drowsy = Some(plan);
        self.memory_leakage = Some(memory_leakage);
        self
    }

    /// Attaches a booted resilience controller (builder style). The
    /// controller must have been built over this server's memory (after
    /// [`NeuromorphicSystem::new`] loaded it).
    pub fn with_resilience(mut self, controller: ResilienceController) -> Self {
        self.resilience = Some(controller);
        self
    }

    /// The wrapped system.
    pub fn system(&self) -> &NeuromorphicSystem {
        &self.system
    }

    /// Mutable access to the wrapped system — the maintenance port chaos
    /// injection degrades the store through.
    pub fn system_mut(&mut self) -> &mut NeuromorphicSystem {
        &mut self.system
    }

    /// The attached resilience controller, when any.
    pub fn resilience(&self) -> Option<&ResilienceController> {
        self.resilience.as_ref()
    }

    /// Runs one maintenance window (scrub sweep → spare-row repair → BER
    /// governor update) when a resilience controller is attached. Call
    /// between serving batches; the request path itself never mutates the
    /// store.
    pub fn maintain(&mut self) {
        if let Some(controller) = self.resilience.as_mut() {
            controller.maintain(self.system.memory_mut());
        }
    }

    /// The configured options.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// The drowsy plan, when configured.
    pub fn drowsy_plan(&self) -> Option<&DrowsyPlan> {
        self.drowsy.as_ref()
    }

    /// Worker threads the next [`serve`](Self::serve) call will use.
    pub fn workers(&self) -> usize {
        if self.options.workers > 0 {
            self.options.workers
        } else {
            sram_exec::effective_threads()
        }
    }

    /// The reference prediction vector: request `i` classified on the
    /// `sram_exec` pool, no queue, no batching. [`serve`](Self::serve) must
    /// match this bit-for-bit — tests pin the two against each other.
    pub fn reference_predictions<S: AsRef<[f32]> + Sync>(&self, requests: &[S]) -> Vec<usize> {
        sram_exec::par_map_indexed(requests.len(), |i| {
            let mut ctx = InferContext::for_request(self.options.base_seed, i as u64);
            self.system.classify_request(requests[i].as_ref(), &mut ctx)
        })
    }

    /// Serves a closed batch of requests (request `i` has id `i`, all
    /// admitted at t=0) through the queue → micro-batcher → worker
    /// pipeline; blocks until the queue drains and returns the merged
    /// report.
    ///
    /// # Panics
    ///
    /// Propagates the first worker panic.
    pub fn serve<S: AsRef<[f32]> + Sync>(&self, requests: &[S]) -> ServeReport {
        self.serve_configured(requests, &self.options)
    }

    /// [`serve`](Self::serve) with per-call options — worker count, batch
    /// ceiling, and seed stream can be tuned without rebuilding the server
    /// (the loaded memory image is the expensive part).
    ///
    /// # Examples
    ///
    /// Predictions are bit-identical at any worker count and batch size;
    /// only throughput changes:
    ///
    /// ```
    /// use fault_inject::model::WordFailureModel;
    /// use fault_inject::protection::ProtectionPolicy;
    /// use neural::network::Mlp;
    /// use neural::quant::{Encoding, QuantizedMlp};
    /// use neuro_system::controller::NeuromorphicSystem;
    /// use neuro_system::layout;
    /// use neuro_system::npe::Npe;
    /// use sram_array::organization::{SubArrayDims, SynapticMemoryMap};
    /// use sram_array::sharded::ShardedMemory;
    /// use sram_serve::{InferenceServer, ServeOptions};
    ///
    /// let q = QuantizedMlp::from_mlp(&Mlp::new(&[8, 6, 3], 1), Encoding::TwosComplement);
    /// let words = layout::bank_words(&q);
    /// let map = SynapticMemoryMap::new(&words, &ProtectionPolicy::Uniform6T, SubArrayDims::PAPER);
    /// let memory = ShardedMemory::new(map, vec![WordFailureModel::ideal(); 2], 5, 2);
    /// let system = NeuromorphicSystem::new(&q, memory, Npe::new(q.format));
    /// let server = InferenceServer::new(system, ServeOptions::default());
    ///
    /// let requests: Vec<Vec<f32>> = (0..6).map(|i| vec![i as f32 / 6.0; 8]).collect();
    /// let one = server.serve_configured(
    ///     &requests,
    ///     &ServeOptions { workers: 1, max_batch: 1, base_seed: 42 },
    /// );
    /// let four = server.serve_configured(
    ///     &requests,
    ///     &ServeOptions { workers: 4, max_batch: 3, base_seed: 42 },
    /// );
    /// assert_eq!(one.predictions, four.predictions);
    /// assert_eq!(one.words_read, four.words_read);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `options.max_batch` is zero; propagates the first worker
    /// panic.
    pub fn serve_configured<S: AsRef<[f32]> + Sync>(
        &self,
        requests: &[S],
        options: &ServeOptions,
    ) -> ServeReport {
        assert!(options.max_batch > 0, "max_batch must be at least 1");
        let n = requests.len();
        let configured = if options.workers > 0 {
            options.workers
        } else {
            sram_exec::effective_threads()
        };
        let workers = configured.clamp(1, n.max(1)).min(MAX_WORKERS);
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
        let shard_reads_before: Vec<usize> = self
            .system
            .memory()
            .shard_counts()
            .iter()
            .map(|c| c.reads)
            .collect();
        let start = Instant::now();

        struct WorkerOutcome {
            /// `(request id, prediction)` in completion order; latencies
            /// live in the histogram.
            results: Vec<(usize, usize)>,
            histogram: LatencyHistogram,
            queue_wait: LatencyHistogram,
            service: LatencyHistogram,
            fault_bits: u64,
            words_read: u64,
            batches: usize,
            max_batch_observed: usize,
        }

        // When no bank can fault a read, the scalar datapath draws zero
        // randomness per request — so one physical row fetch can feed every
        // request in a micro-batch (`classify_batch`) without perturbing
        // any per-request stream. Faulting memories keep the per-request
        // path: each request's masks must come from its own RNG.
        let batchable = self.system.memory().read_fault_free();
        let run_worker = || {
            let mut out = WorkerOutcome {
                results: Vec::new(),
                histogram: LatencyHistogram::new(),
                queue_wait: LatencyHistogram::new(),
                service: LatencyHistogram::new(),
                fault_bits: 0,
                words_read: 0,
                batches: 0,
                max_batch_observed: 0,
            };
            let mut ctx = self.system.make_context(options.base_seed, 0);
            let mut batch_ctxs: Vec<InferContext> = Vec::new();
            let mut features: Vec<&[f32]> = Vec::with_capacity(options.max_batch);
            let mut batch: Vec<usize> = Vec::with_capacity(options.max_batch);
            loop {
                {
                    let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                    if q.is_empty() {
                        break;
                    }
                    let take = adaptive_batch(q.len(), workers, options.max_batch).min(q.len());
                    batch.clear();
                    batch.extend(q.drain(..take));
                }
                out.batches += 1;
                out.max_batch_observed = out.max_batch_observed.max(batch.len());
                if batchable && batch.len() > 1 {
                    while batch_ctxs.len() < batch.len() {
                        batch_ctxs.push(self.system.make_context(options.base_seed, 0));
                    }
                    let ctxs = &mut batch_ctxs[..batch.len()];
                    features.clear();
                    for (&id, c) in batch.iter().zip(ctxs.iter_mut()) {
                        c.reset(options.base_seed, id as u64);
                        features.push(requests[id].as_ref());
                    }
                    let popped_ns = start.elapsed().as_nanos() as u64;
                    let predictions = self.system.classify_batch(&features, ctxs);
                    let done_ns = start.elapsed().as_nanos() as u64;
                    for ((&id, c), prediction) in batch.iter().zip(ctxs.iter()).zip(predictions) {
                        out.histogram.record(done_ns);
                        out.queue_wait.record(popped_ns);
                        out.service.record(done_ns.saturating_sub(popped_ns));
                        out.fault_bits += c.fault_bits();
                        out.words_read += c.reads();
                        out.results.push((id, prediction));
                    }
                } else {
                    for &id in &batch {
                        ctx.reset(options.base_seed, id as u64);
                        let begun_ns = start.elapsed().as_nanos() as u64;
                        let prediction = self
                            .system
                            .classify_request(requests[id].as_ref(), &mut ctx);
                        let done_ns = start.elapsed().as_nanos() as u64;
                        out.histogram.record(done_ns);
                        out.queue_wait.record(begun_ns);
                        out.service.record(done_ns.saturating_sub(begun_ns));
                        out.fault_bits += ctx.fault_bits();
                        out.words_read += ctx.reads();
                        out.results.push((id, prediction));
                    }
                }
            }
            out
        };

        let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(run_worker)).collect();
            // Join every worker before propagating a panic (same rationale
            // as the exec pool: resuming the unwind with live workers would
            // double-panic during scope teardown).
            let mut outcomes = Vec::with_capacity(workers);
            let mut first_panic = None;
            for handle in handles {
                match handle.join() {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(payload) => {
                        first_panic.get_or_insert(payload);
                    }
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
            outcomes
        });
        let wall = start.elapsed();

        let mut predictions = vec![usize::MAX; n];
        let mut latency = LatencyHistogram::new();
        let mut queue_wait = LatencyHistogram::new();
        let mut service = LatencyHistogram::new();
        let mut fault_bits = 0u64;
        let mut words_read = 0u64;
        let mut batches = 0usize;
        let mut max_batch_observed = 0usize;
        for outcome in &outcomes {
            for &(id, prediction) in &outcome.results {
                predictions[id] = prediction;
            }
            latency.merge(&outcome.histogram);
            queue_wait.merge(&outcome.queue_wait);
            service.merge(&outcome.service);
            fault_bits += outcome.fault_bits;
            words_read += outcome.words_read;
            batches += outcome.batches;
            max_batch_observed = max_batch_observed.max(outcome.max_batch_observed);
        }
        debug_assert!(predictions.iter().all(|&p| p != usize::MAX || n == 0));
        let shard_reads: Vec<u64> = self
            .system
            .memory()
            .shard_counts()
            .iter()
            .zip(&shard_reads_before)
            .map(|(after, &before)| (after.reads - before) as u64)
            .collect();

        let standby_leakage = match (&self.drowsy, self.memory_leakage) {
            (Some(plan), Some(leak)) => {
                Some(Watt::new(leak.watts() * plan.standby_leakage_scale()))
            }
            _ => None,
        };
        ServeReport {
            predictions,
            latency,
            queue_wait,
            service,
            wall,
            workers,
            batches,
            max_batch_observed,
            fault_bits,
            words_read,
            shard_reads,
            energy_per_inference: self.energy,
            standby_leakage,
            resilience: self.resilience.as_ref().map(|r| r.counters()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_batch_tracks_backlog() {
        // Deep queue: full batches. Draining queue: singles.
        assert_eq!(adaptive_batch(1024, 4, 16), 16);
        assert_eq!(adaptive_batch(64, 4, 16), 8);
        assert_eq!(adaptive_batch(7, 4, 16), 1);
        assert_eq!(adaptive_batch(0, 4, 16), 1);
        // Degenerate knobs stay sane.
        assert_eq!(adaptive_batch(100, 0, 16), 16);
        assert_eq!(adaptive_batch(100, 4, 0), 1);
    }
}
