//! The fused bulk-read serving datapath against golden scalar digests.
//!
//! The batch-amortized path (one physical row fetch feeding a whole
//! micro-batch) is only legal on read-fault-free memories; these tests pin
//! it byte-identical to the scalar per-request datapath at every worker ×
//! shard × batch combination, and against a digest recorded from the
//! pre-fusion scalar implementation — any drift here means the fused
//! datapath changed observable predictions.

use fault_inject::model::{BitErrorRates, WordFailureModel};
use fault_inject::protection::ProtectionPolicy;
use neuro_system::controller::NeuromorphicSystem;
use neuro_system::layout;
use neuro_system::npe::Npe;
use sram_array::organization::{SubArrayDims, SynapticMemoryMap};
use sram_array::sharded::ShardedMemory;
use sram_serve::fixture::{request_stream, trained_digit_network};
use sram_serve::{InferenceServer, ServeOptions};

const BASE_SEED: u64 = 0xD16E_57AB;
const REQUESTS: usize = 48;

/// FNV-1a digest of the 48-request prediction vector produced by the
/// pre-fusion scalar datapath (recorded by running this fixture on the
/// commit preceding the bulk-read path, with only the lowest-index argmax
/// tie-break applied — the one sanctioned semantic change in that PR).
const GOLDEN_DIGEST: u64 = 11269891199950094092;

/// A server over a write-faulty but *read-fault-free* hybrid memory — the
/// regime where the batch-amortized path is allowed to engage. Write
/// faults still exercise the address-keyed corruption streams at load.
fn server(shards: usize, workers: usize, max_batch: usize) -> (InferenceServer, Vec<Vec<f32>>) {
    let (q, test_set) = trained_digit_network();
    let words = layout::bank_words(&q);
    let policy = ProtectionPolicy::MsbProtected { msb_8t: 3 };
    let map = SynapticMemoryMap::new(&words, &policy, SubArrayDims::PAPER);
    let rates = BitErrorRates {
        read_6t: 0.0,
        write_6t: 0.004,
        read_8t: 0.0,
        write_8t: 0.0,
    };
    let models: Vec<WordFailureModel> = (0..words.len())
        .map(|b| WordFailureModel::new(&rates, &policy.assignment(b)))
        .collect();
    let memory = ShardedMemory::new(map, models, 29, shards);
    let system = NeuromorphicSystem::new(&q, memory, Npe::new(q.format));
    let requests = request_stream(&test_set, REQUESTS);
    let server = InferenceServer::new(
        system,
        ServeOptions {
            workers,
            max_batch,
            base_seed: BASE_SEED,
        },
    );
    (server, requests)
}

#[test]
fn fused_serve_matches_the_golden_scalar_digest_everywhere() {
    for shards in [1usize, 2, 4] {
        for workers in [1usize, 2, 4] {
            for max_batch in [1usize, 4, 16] {
                let (server, requests) = server(shards, workers, max_batch);
                let report = server.serve(&requests);
                assert_eq!(
                    report.digest(),
                    GOLDEN_DIGEST,
                    "digest drifted at {shards} shards / {workers} workers / batch {max_batch}"
                );
                assert_eq!(
                    report.predictions,
                    server.reference_predictions(&requests),
                    "serve diverged from the per-request reference at \
                     {shards} shards / {workers} workers / batch {max_batch}"
                );
            }
        }
    }
}

#[test]
fn batch_amortization_preserves_the_scalar_read_accounting() {
    let (server, requests) = server(2, 2, 16);
    assert!(server.system().memory().read_fault_free());
    let report = server.serve(&requests);
    let expected = (REQUESTS * server.system().reads_per_inference()) as u64;
    assert_eq!(
        report.words_read, expected,
        "amortized rows must bill every logical copy"
    );
    assert_eq!(report.shard_reads.iter().sum::<u64>(), expected);
    assert_eq!(
        report.fault_bits, 0,
        "read-fault-free memory injected faults"
    );
    assert!(report.max_batch_observed > 1, "batch path never engaged");
    assert!(report.words_per_sec() > 0.0);
}
