//! Property tests: micro-batch splitting and worker scheduling never
//! change served predictions.

use fault_inject::model::{BitErrorRates, WordFailureModel};
use fault_inject::protection::ProtectionPolicy;
use neural::network::Mlp;
use neural::quant::{Encoding, QuantizedMlp};
use neuro_system::controller::NeuromorphicSystem;
use neuro_system::layout;
use neuro_system::npe::Npe;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sram_array::organization::{SubArrayDims, SynapticMemoryMap};
use sram_array::sharded::ShardedMemory;
use sram_serve::{InferenceServer, ServeOptions};
use std::sync::OnceLock;

/// A tiny (untrained — predictions are arbitrary but deterministic) faulty
/// system, cheap enough for many proptest cases.
fn tiny_server() -> &'static InferenceServer {
    static SERVER: OnceLock<InferenceServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        let q = QuantizedMlp::from_mlp(&Mlp::new(&[16, 12, 4], 7), Encoding::TwosComplement);
        let words = layout::bank_words(&q);
        let policy = ProtectionPolicy::MsbProtected { msb_8t: 2 };
        let map = SynapticMemoryMap::new(&words, &policy, SubArrayDims::PAPER);
        let rates = BitErrorRates {
            read_6t: 0.15,
            write_6t: 0.01,
            read_8t: 0.0,
            write_8t: 0.0,
        };
        let models: Vec<WordFailureModel> = (0..words.len())
            .map(|b| WordFailureModel::new(&rates, &policy.assignment(b)))
            .collect();
        let memory = ShardedMemory::new(map, models, 41, 3);
        InferenceServer::new(
            NeuromorphicSystem::new(&q, memory, Npe::new(q.format)),
            ServeOptions::default(),
        )
    })
}

fn random_requests(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..16).map(|_| rng.gen::<f32>()).collect())
        .collect()
}

proptest! {
    /// Any micro-batch ceiling, any worker count: served predictions equal
    /// the unbatched exec-pool reference.
    #[test]
    fn batch_splitting_never_changes_outputs(
        max_batch in 1usize..40,
        workers in 1usize..6,
        n in 1usize..48,
        seed in 0u64..500,
    ) {
        let server = tiny_server();
        let requests = random_requests(n, seed);
        let options = ServeOptions {
            workers,
            max_batch,
            base_seed: seed ^ 0xD15E_A5ED,
        };
        let reference = server.serve_configured(
            &requests,
            &ServeOptions { workers: 1, max_batch: 1, ..options.clone() },
        );
        let batched = server.serve_configured(&requests, &options);
        prop_assert_eq!(&batched.predictions, &reference.predictions);
        // Fault accounting is part of the replay guarantee, not just the
        // argmax outputs.
        prop_assert_eq!(batched.fault_bits, reference.fault_bits);
        prop_assert_eq!(batched.words_read, reference.words_read);
        prop_assert!(batched.max_batch_observed <= max_batch);
    }

    /// Replaying a base seed is exact: predictions *and* fault accounting.
    #[test]
    fn base_seed_replay_is_exact(seed in 0u64..200) {
        let server = tiny_server();
        let requests = random_requests(24, 3);
        let opts = |base_seed| ServeOptions { workers: 2, max_batch: 4, base_seed };
        let a = server.serve_configured(&requests, &opts(seed));
        let b = server.serve_configured(&requests, &opts(seed));
        prop_assert_eq!(&a.predictions, &b.predictions);
        prop_assert_eq!(a.fault_bits, b.fault_bits);
    }
}

/// The tiny network + faulty-memory fixture at an arbitrary shard count.
fn tiny_server_sharded(shards: usize) -> InferenceServer {
    let q = QuantizedMlp::from_mlp(&Mlp::new(&[16, 12, 4], 7), Encoding::TwosComplement);
    let words = layout::bank_words(&q);
    let policy = ProtectionPolicy::MsbProtected { msb_8t: 2 };
    let map = SynapticMemoryMap::new(&words, &policy, SubArrayDims::PAPER);
    let rates = BitErrorRates {
        read_6t: 0.15,
        write_6t: 0.01,
        read_8t: 0.0,
        write_8t: 0.0,
    };
    let models: Vec<WordFailureModel> = (0..words.len())
        .map(|b| WordFailureModel::new(&rates, &policy.assignment(b)))
        .collect();
    let memory = ShardedMemory::new(map, models, 41, shards);
    InferenceServer::new(
        NeuromorphicSystem::new(&q, memory, Npe::new(q.format)),
        ServeOptions::default(),
    )
}

proptest! {
    /// Serving out of the sharded store is bit-identical to the
    /// 1-shard (monolithic-layout) reference for any shard count:
    /// predictions *and* fault accounting. The shard count is a pure
    /// throughput knob, invisible to every served byte.
    #[test]
    fn shard_count_never_changes_served_outputs(
        shards in 2usize..10,
        n in 1usize..24,
        seed in 0u64..200,
    ) {
        let requests = random_requests(n, seed);
        let options = ServeOptions {
            workers: 2,
            max_batch: 4,
            base_seed: seed ^ 0x5AA5,
        };
        let reference = tiny_server_sharded(1).serve_configured(&requests, &options);
        let sharded = tiny_server_sharded(shards).serve_configured(&requests, &options);
        prop_assert_eq!(&sharded.predictions, &reference.predictions);
        prop_assert_eq!(sharded.fault_bits, reference.fault_bits);
        prop_assert_eq!(sharded.words_read, reference.words_read);
        // Per-shard reads refine the same total, whatever the partition.
        prop_assert_eq!(
            sharded.shard_reads.iter().sum::<u64>(),
            sharded.words_read
        );
    }
}

/// Different base seeds replay different fault streams. Two independent
/// binomial draws *can* collide on the total fault count (~0.4 % per
/// pair at this volume), so this is a fixed-seed test over several pairs
/// — deterministic, and the all-pairs-collide probability is negligible
/// (~1e-12) even if the underlying RNG changes.
#[test]
fn base_seed_selects_the_fault_stream() {
    let server = tiny_server();
    let requests = random_requests(24, 3);
    let fault_bits_at = |base_seed| {
        server
            .serve_configured(
                &requests,
                &ServeOptions {
                    workers: 2,
                    max_batch: 4,
                    base_seed,
                },
            )
            .fault_bits
    };
    let distinct = [11u64, 222, 3333, 44444, 555555]
        .iter()
        .map(|&s| fault_bits_at(s))
        .collect::<std::collections::HashSet<u64>>();
    assert!(
        distinct.len() > 1,
        "five independent seed streams all drew the same fault count"
    );
}
