//! Resilience-loop integration: the chaos scenario (BIST boot, per-wave
//! scrub + spare-row repair, BER-fed governor) must be bit-identical at
//! any worker count and any shard count, and protection must measurably
//! beat no-protection under the same degradation schedule.

use fault_inject::chaos::ChaosSchedule;
use fault_inject::model::{BitErrorRates, WordFailureModel};
use fault_inject::protection::ProtectionPolicy;
use neural::dataset::Dataset;
use neural::quant::QuantizedMlp;
use neuro_system::controller::NeuromorphicSystem;
use neuro_system::layout;
use neuro_system::npe::Npe;
use sram_array::organization::{SubArrayDims, SynapticMemoryMap};
use sram_array::sharded::ShardedMemory;
use sram_serve::fixture::{request_stream, trained_digit_network};
use sram_serve::{
    apply_chaos_event, prediction_digest, InferenceServer, ResilienceConfig, ResilienceController,
    ResilienceCounters, ServeOptions,
};
use std::sync::OnceLock;

const BASE_SEED: u64 = 0x2E51_71E1;
const CHAOS_SEED: u64 = 0xC4A0_5EED;
const WAVES: usize = 2;

struct Fixture {
    network: QuantizedMlp,
    test_set: Dataset,
    requests: Vec<Vec<f32>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (network, test_set) = trained_digit_network();
        let requests = request_stream(&test_set, 128);
        Fixture {
            network,
            test_set,
            requests,
        }
    })
}

/// A lightly faulty hybrid store for the trained network, built without
/// the characterization framework (rates pinned, not derived) so the test
/// costs milliseconds per build.
fn build_memory(network: &QuantizedMlp, shards: usize) -> ShardedMemory {
    let words = layout::bank_words(network);
    let policy = ProtectionPolicy::MsbProtected { msb_8t: 3 };
    let map = SynapticMemoryMap::new(&words, &policy, SubArrayDims::PAPER);
    let rates = BitErrorRates {
        read_6t: 0.02,
        write_6t: 0.002,
        read_8t: 0.0,
        write_8t: 0.0,
    };
    let models: Vec<WordFailureModel> = (0..words.len())
        .map(|b| WordFailureModel::new(&rates, &policy.assignment(b)))
        .collect();
    ShardedMemory::new(map, models, 29, shards)
}

fn schedule_for(network: &QuantizedMlp) -> ChaosSchedule {
    let total_words: usize = layout::bank_words(network).iter().sum();
    let row_words = build_memory(network, 1).words_per_row();
    ChaosSchedule::degraded_shard(CHAOS_SEED, total_words, 4, WAVES, row_words, 12)
}

struct Outcome {
    predictions: Vec<usize>,
    accuracy: f64,
    counters: Option<ResilienceCounters>,
    victim_mismatch: usize,
}

/// Serves the shared request stream in `WAVES` waves, striking the
/// schedule's events at each wave boundary; `protected` adds the
/// resilience controller (BIST boot + per-wave maintenance).
fn run_scenario(shards: usize, schedule: Option<&ChaosSchedule>, protected: bool) -> Outcome {
    let fx = fixture();
    let golden = layout::flatten(&fx.network);
    let mut system = NeuromorphicSystem::new(
        &fx.network,
        build_memory(&fx.network, shards),
        Npe::new(fx.network.format),
    );
    let controller = protected.then(|| {
        ResilienceController::new(system.memory_mut(), &golden, ResilienceConfig::default())
    });
    let mut server = InferenceServer::new(
        system,
        ServeOptions {
            workers: 0,
            max_batch: 8,
            base_seed: BASE_SEED,
        },
    );
    if let Some(controller) = controller {
        server = server.with_resilience(controller);
    }

    let n = fx.requests.len();
    let chunk = n.div_ceil(WAVES);
    let mut predictions = Vec::with_capacity(n);
    for wave in 0..WAVES {
        if let Some(schedule) = schedule {
            for event in schedule.events_at(wave) {
                apply_chaos_event(server.system_mut().memory_mut(), event);
            }
        }
        if protected {
            server.maintain();
        }
        let lo = (wave * chunk).min(n);
        let hi = ((wave + 1) * chunk).min(n);
        let report = server.serve_configured(
            &fx.requests[lo..hi],
            &ServeOptions {
                workers: 0,
                max_batch: 8,
                base_seed: sram_exec::derive_seed(BASE_SEED, wave as u64),
            },
        );
        predictions.extend_from_slice(&report.predictions);
    }
    let correct = predictions
        .iter()
        .enumerate()
        .filter(|&(i, &p)| p == fx.test_set.label(i % fx.test_set.len()))
        .count();
    // Residual persistent damage in the victim region after the run:
    // observed bytes that differ from the golden image there.
    let victim_mismatch = schedule
        .map(|s| {
            let memory = server.system().memory();
            s.events
                .iter()
                .flat_map(|e| {
                    let (start, words) = e.event.range();
                    (start..start + words).map(|i| (memory.read_raw(i) != golden[i]) as usize)
                })
                .sum()
        })
        .unwrap_or(0);
    Outcome {
        accuracy: correct as f64 / n as f64,
        counters: server.resilience().map(|r| r.counters()),
        predictions,
        victim_mismatch,
    }
}

#[test]
fn chaos_scenario_is_identical_across_worker_counts() {
    let schedule = schedule_for(&fixture().network);
    sram_exec::set_threads(1);
    let reference = run_scenario(3, Some(&schedule), true);
    for workers in [2usize, 4] {
        sram_exec::set_threads(workers);
        let run = run_scenario(3, Some(&schedule), true);
        assert_eq!(
            prediction_digest(&run.predictions),
            prediction_digest(&reference.predictions),
            "{workers} workers"
        );
        assert_eq!(run.counters, reference.counters, "{workers} workers");
    }
    sram_exec::clear_threads();
}

#[test]
fn scrub_and_repair_decisions_are_invariant_across_shard_counts() {
    let schedule = schedule_for(&fixture().network);
    let reference = run_scenario(1, Some(&schedule), true);
    let rc = reference.counters.as_ref().unwrap();
    for shards in [3usize, 5] {
        let run = run_scenario(shards, Some(&schedule), true);
        assert_eq!(
            prediction_digest(&run.predictions),
            prediction_digest(&reference.predictions),
            "{shards} shards"
        );
        let c = run.counters.as_ref().unwrap();
        // Everything the bank-keyed streams decide is shard-invariant; the
        // governor's per-shard boosts legitimately re-partition.
        assert_eq!(c.bist_digest, rc.bist_digest, "{shards} shards");
        assert_eq!(c.bist_weak_bits, rc.bist_weak_bits);
        assert_eq!(c.corrected_words, rc.corrected_words, "{shards} shards");
        assert_eq!(c.corrected_bits, rc.corrected_bits);
        assert_eq!(c.uncorrectable_words, rc.uncorrectable_words);
        assert_eq!(c.rows_repaired, rc.rows_repaired, "{shards} shards");
        assert_eq!(c.spare_rows_free, rc.spare_rows_free);
    }
}

#[test]
fn protection_beats_no_protection_under_the_same_schedule() {
    let schedule = schedule_for(&fixture().network);
    let healthy = run_scenario(3, None, false);
    let protected = run_scenario(3, Some(&schedule), true);
    let unprotected = run_scenario(3, Some(&schedule), false);

    // The maintenance loop actually worked: scrub corrected words, spares
    // were spent, and the governor reacted to the elevated BER.
    let c = protected.counters.as_ref().unwrap();
    assert!(c.scrub_sweeps >= WAVES as u64);
    assert!(c.corrected_words > 0, "scrub corrected nothing");
    assert!(c.rows_repaired > 0, "no spare rows were spent");
    assert!(c.governor_boosts > 0, "governor ignored the BER spike");

    // Repair + scrub leave strictly less persistent damage in the victim
    // region than riding the degradation out.
    assert!(
        protected.victim_mismatch < unprotected.victim_mismatch,
        "protected {} vs unprotected {} mismatched victim bytes",
        protected.victim_mismatch,
        unprotected.victim_mismatch
    );
    // And that shows up end to end: protected accuracy stays near healthy,
    // unprotected pays for the damage (all three runs are fully seeded, so
    // these are deterministic comparisons, not statistical ones).
    assert!(
        protected.accuracy >= healthy.accuracy - 0.02,
        "protected {} vs healthy {}",
        protected.accuracy,
        healthy.accuracy
    );
    assert!(
        unprotected.accuracy <= protected.accuracy,
        "unprotected {} vs protected {}",
        unprotected.accuracy,
        protected.accuracy
    );
}

#[test]
fn serve_report_exposes_resilience_counters_only_when_attached() {
    let fx = fixture();
    let system = NeuromorphicSystem::new(
        &fx.network,
        build_memory(&fx.network, 2),
        Npe::new(fx.network.format),
    );
    let opts = ServeOptions {
        workers: 1,
        max_batch: 8,
        base_seed: BASE_SEED,
    };
    let bare = InferenceServer::new(system, opts.clone());
    let report = bare.serve(&fx.requests[..8]);
    assert!(report.resilience.is_none());

    let golden = layout::flatten(&fx.network);
    let mut system = NeuromorphicSystem::new(
        &fx.network,
        build_memory(&fx.network, 2),
        Npe::new(fx.network.format),
    );
    let controller =
        ResilienceController::new(system.memory_mut(), &golden, ResilienceConfig::default());
    let server = InferenceServer::new(system, opts).with_resilience(controller);
    let report = server.serve(&fx.requests[..8]);
    let counters = report.resilience.expect("controller attached");
    assert!(counters.bist_digest != 0);
    assert_eq!(counters.scrub_sweeps, 0, "no maintenance ran yet");
}
