//! End-to-end serving determinism: the queue → micro-batcher → worker
//! pipeline must reproduce the sequential reference predictions exactly,
//! whatever the concurrency.

use fault_inject::model::{BitErrorRates, WordFailureModel};
use fault_inject::protection::ProtectionPolicy;
use neuro_system::controller::{InferContext, NeuromorphicSystem};
use neuro_system::layout;
use neuro_system::npe::Npe;
use sram_array::organization::{SubArrayDims, SynapticMemoryMap};
use sram_array::sharded::ShardedMemory;
use sram_serve::fixture::{request_stream, trained_digit_network};
use sram_serve::{InferenceServer, ServeOptions};
use std::sync::OnceLock;

const BASE_SEED: u64 = 0xFEED_F00D;

struct Fixture {
    server: InferenceServer,
    requests: Vec<Vec<f32>>,
}

/// One trained system + request stream shared by every test in this
/// binary (training dominates the fixture cost).
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (q, test_set) = trained_digit_network();

        // A decidedly faulty hybrid memory, so determinism is exercised on
        // the fault path, not just the clean datapath.
        let words = layout::bank_words(&q);
        let policy = ProtectionPolicy::MsbProtected { msb_8t: 3 };
        let map = SynapticMemoryMap::new(&words, &policy, SubArrayDims::PAPER);
        let rates = BitErrorRates {
            read_6t: 0.05,
            write_6t: 0.005,
            read_8t: 0.0,
            write_8t: 0.0,
        };
        let models: Vec<WordFailureModel> = (0..words.len())
            .map(|b| WordFailureModel::new(&rates, &policy.assignment(b)))
            .collect();
        let memory = ShardedMemory::new(map, models, 29, 3);
        let system = NeuromorphicSystem::new(&q, memory, Npe::new(q.format));

        let requests = request_stream(&test_set, 96);
        Fixture {
            server: InferenceServer::new(
                system,
                ServeOptions {
                    workers: 0,
                    max_batch: 8,
                    base_seed: BASE_SEED,
                },
            ),
            requests,
        }
    })
}

/// The sequential reference: request `i` classified in order with a single
/// warm context.
fn sequential_reference(fx: &Fixture) -> Vec<usize> {
    let mut ctx = InferContext::for_request(BASE_SEED, 0);
    fx.requests
        .iter()
        .enumerate()
        .map(|(i, features)| {
            ctx.reset(BASE_SEED, i as u64);
            fx.server.system().classify_request(features, &mut ctx)
        })
        .collect()
}

#[test]
fn threads_hammering_a_shared_controller_match_the_sequential_reference() {
    let fx = fixture();
    let reference = sequential_reference(fx);

    // N threads classify *all* requests concurrently against the same
    // shared system — maximal read-path contention. Every thread must see
    // exactly the reference stream.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let mut ctx = InferContext::for_request(BASE_SEED, 0);
                    fx.requests
                        .iter()
                        .enumerate()
                        .map(|(i, features)| {
                            ctx.reset(BASE_SEED, i as u64);
                            fx.server.system().classify_request(features, &mut ctx)
                        })
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().expect("hammer thread"), reference);
        }
    });
}

#[test]
fn served_predictions_are_worker_count_invariant() {
    let fx = fixture();
    let reference = sequential_reference(fx);
    assert_eq!(fx.server.reference_predictions(&fx.requests), reference);

    for workers in [1usize, 2, 3, 4, 7] {
        let options = ServeOptions {
            workers,
            max_batch: 8,
            base_seed: BASE_SEED,
        };
        let report = fx.server.serve_configured(&fx.requests, &options);
        assert_eq!(
            report.predictions, reference,
            "{workers}-worker serve diverged from the sequential reference"
        );
        assert_eq!(report.workers, workers.min(fx.requests.len()));
    }
}

#[test]
fn serve_report_accounts_every_request() {
    let fx = fixture();
    let report = fx.server.serve_configured(
        &fx.requests,
        &ServeOptions {
            workers: 3,
            max_batch: 8,
            base_seed: BASE_SEED,
        },
    );
    let n = fx.requests.len();
    assert_eq!(report.requests(), n);
    assert_eq!(report.latency.count(), n as u64);
    assert_eq!(
        report.words_read,
        (n * fx.server.system().reads_per_inference()) as u64
    );
    assert!(report.fault_bits > 0, "5% read-fault rate must show up");
    let ber = report.observed_bit_error_rate();
    // 5 of 8 bits fault at 5%: expected word-averaged BER ≈ 0.031, plus a
    // little persistent write corruption; huge sample, wide band.
    assert!((0.02..0.05).contains(&ber), "observed BER {ber}");
    assert!(report.latency.p50_ns() <= report.latency.p99_ns());
    assert!(report.latency.p99_ns() <= report.latency.max_ns());
    assert!(report.throughput_rps() > 0.0);
    assert!(report.batches > 0);
    assert!(report.max_batch_observed <= 8);
    assert_eq!(
        report.digest(),
        sram_serve::prediction_digest(&report.predictions)
    );
}
