//! Netlist construction.

use crate::elements::Element;
use crate::error::SpiceError;
use sram_device::mosfet::Mosfet;
use sram_device::units::{Ampere, Farad, Ohm, Volt};
use std::collections::HashMap;

/// Identifier of a circuit node. `NodeId::GROUND` is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground / reference node, always present.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index (0 = ground).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// `true` for the reference node.
    #[inline]
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// A flat netlist: named nodes plus a list of [`Element`]s.
///
/// # Examples
///
/// Voltage divider:
///
/// ```
/// use nanospice::circuit::{Circuit, NodeId};
/// use nanospice::dc::DcSolver;
/// use sram_device::units::{Ohm, Volt};
///
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("vin");
/// let mid = ckt.node("mid");
/// ckt.vsource("V1", vin, NodeId::GROUND, Volt::new(1.0))?;
/// ckt.resistor("R1", vin, mid, Ohm::new(1000.0))?;
/// ckt.resistor("R2", mid, NodeId::GROUND, Ohm::new(3000.0))?;
/// let op = DcSolver::new(&ckt).solve()?;
/// assert!((op.voltage(mid).volts() - 0.75).abs() < 1e-9);
/// # Ok::<(), nanospice::error::SpiceError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_lookup: HashMap<String, NodeId>,
    elements: Vec<Element>,
    element_lookup: HashMap<String, usize>,
    branch_count: usize,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut ckt = Self {
            node_names: vec!["0".to_owned()],
            node_lookup: HashMap::new(),
            elements: Vec::new(),
            element_lookup: HashMap::new(),
            branch_count: 0,
        };
        ckt.node_lookup.insert("0".to_owned(), NodeId::GROUND);
        ckt.node_lookup.insert("gnd".to_owned(), NodeId::GROUND);
        ckt
    }

    /// Returns the node with the given name, creating it if necessary.
    /// `"0"` and `"gnd"` name the reference node.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_lookup.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_owned());
        self.node_lookup.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_lookup.get(name).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id did not come from this circuit.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Total number of nodes including ground.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of MNA branch unknowns (one per independent voltage source and
    /// per voltage-controlled voltage source).
    #[inline]
    pub fn branch_count(&self) -> usize {
        self.branch_count
    }

    /// Size of the MNA unknown vector: non-ground nodes plus source branches.
    #[inline]
    pub fn unknown_count(&self) -> usize {
        self.node_count() - 1 + self.branch_count
    }

    /// All elements in insertion order.
    #[inline]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Looks up an element by name.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.element_lookup.get(name).map(|&i| &self.elements[i])
    }

    fn check_node(&self, node: NodeId) -> Result<(), SpiceError> {
        if node.0 >= self.node_names.len() {
            return Err(SpiceError::UnknownNode { node: node.0 });
        }
        Ok(())
    }

    fn check_new_name(&self, name: &str) -> Result<(), SpiceError> {
        if self.element_lookup.contains_key(name) {
            return Err(SpiceError::DuplicateElement {
                name: name.to_owned(),
            });
        }
        Ok(())
    }

    fn register(&mut self, element: Element) -> Result<(), SpiceError> {
        let name = element.name().to_owned();
        self.check_new_name(&name)?;
        for n in element.nodes() {
            self.check_node(n)?;
        }
        self.element_lookup.insert(name, self.elements.len());
        self.elements.push(element);
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] for a non-positive or non-finite value,
    /// [`SpiceError::DuplicateElement`] for a reused name,
    /// [`SpiceError::UnknownNode`] for a foreign node id.
    pub fn resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        resistance: Ohm,
    ) -> Result<(), SpiceError> {
        if resistance.ohms() <= 0.0 || !resistance.ohms().is_finite() {
            return Err(SpiceError::InvalidValue {
                name: name.to_owned(),
                reason: "resistance must be positive and finite",
            });
        }
        self.register(Element::Resistor {
            name: name.to_owned(),
            a,
            b,
            resistance,
        })
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Same classes as [`Circuit::resistor`].
    pub fn capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        capacitance: Farad,
    ) -> Result<(), SpiceError> {
        if capacitance.farads() <= 0.0 || !capacitance.farads().is_finite() {
            return Err(SpiceError::InvalidValue {
                name: name.to_owned(),
                reason: "capacitance must be positive and finite",
            });
        }
        self.register(Element::Capacitor {
            name: name.to_owned(),
            a,
            b,
            capacitance,
        })
    }

    /// Adds an ideal voltage source (`pos` − `neg` = `voltage`).
    ///
    /// # Errors
    ///
    /// Same classes as [`Circuit::resistor`] (value must be finite).
    pub fn vsource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        voltage: Volt,
    ) -> Result<(), SpiceError> {
        if !voltage.volts().is_finite() {
            return Err(SpiceError::InvalidValue {
                name: name.to_owned(),
                reason: "source voltage must be finite",
            });
        }
        self.check_new_name(name)?;
        self.check_node(pos)?;
        self.check_node(neg)?;
        let branch = self.branch_count;
        self.branch_count += 1;
        self.register(Element::VoltageSource {
            name: name.to_owned(),
            pos,
            neg,
            voltage,
            branch,
        })
    }

    /// Adds an ideal current source pushing current from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Same classes as [`Circuit::resistor`] (value must be finite).
    pub fn isource(
        &mut self,
        name: &str,
        from: NodeId,
        to: NodeId,
        current: Ampere,
    ) -> Result<(), SpiceError> {
        if !current.amps().is_finite() {
            return Err(SpiceError::InvalidValue {
                name: name.to_owned(),
                reason: "source current must be finite",
            });
        }
        self.register(Element::CurrentSource {
            name: name.to_owned(),
            from,
            to,
            current,
        })
    }

    /// Adds a MOSFET.
    ///
    /// # Errors
    ///
    /// [`SpiceError::DuplicateElement`] / [`SpiceError::UnknownNode`] as for
    /// the other builders; the device itself is validated at construction by
    /// [`Mosfet::new`].
    pub fn transistor(
        &mut self,
        name: &str,
        gate: NodeId,
        drain: NodeId,
        source: NodeId,
        device: Mosfet,
    ) -> Result<(), SpiceError> {
        self.register(Element::Transistor {
            name: name.to_owned(),
            gate,
            drain,
            source,
            device,
        })
    }

    /// Adds a voltage-controlled voltage source (SPICE `E` card):
    /// `v(pos) − v(neg) = gain · (v(cpos) − v(cneg))`.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] for a non-finite gain, otherwise the same
    /// classes as [`Circuit::resistor`].
    pub fn vcvs(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        cpos: NodeId,
        cneg: NodeId,
        gain: f64,
    ) -> Result<(), SpiceError> {
        if !gain.is_finite() {
            return Err(SpiceError::InvalidValue {
                name: name.to_owned(),
                reason: "vcvs gain must be finite",
            });
        }
        self.check_new_name(name)?;
        for n in [pos, neg, cpos, cneg] {
            self.check_node(n)?;
        }
        let branch = self.branch_count;
        self.branch_count += 1;
        self.register(Element::Vcvs {
            name: name.to_owned(),
            pos,
            neg,
            cpos,
            cneg,
            gain,
            branch,
        })
    }

    /// Adds a voltage-controlled current source (SPICE `G` card) pushing
    /// `transconductance · (v(cpos) − v(cneg))` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] for a non-finite transconductance,
    /// otherwise the same classes as [`Circuit::resistor`].
    pub fn vccs(
        &mut self,
        name: &str,
        from: NodeId,
        to: NodeId,
        cpos: NodeId,
        cneg: NodeId,
        transconductance: f64,
    ) -> Result<(), SpiceError> {
        if !transconductance.is_finite() {
            return Err(SpiceError::InvalidValue {
                name: name.to_owned(),
                reason: "vccs transconductance must be finite",
            });
        }
        self.register(Element::Vccs {
            name: name.to_owned(),
            from,
            to,
            cpos,
            cneg,
            transconductance,
        })
    }

    /// Updates the value of a voltage source (used by sweeps).
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownElement`] if no voltage source has this name.
    pub fn set_vsource(&mut self, name: &str, value: Volt) -> Result<(), SpiceError> {
        match self
            .element_lookup
            .get(name)
            .map(|&i| &mut self.elements[i])
        {
            Some(Element::VoltageSource { voltage, .. }) => {
                *voltage = value;
                Ok(())
            }
            _ => Err(SpiceError::UnknownElement {
                name: name.to_owned(),
            }),
        }
    }

    /// Applies a threshold shift to a named transistor (Monte Carlo hook).
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownElement`] if no transistor has this name.
    pub fn set_transistor_delta_vt(&mut self, name: &str, delta: Volt) -> Result<(), SpiceError> {
        match self
            .element_lookup
            .get(name)
            .map(|&i| &mut self.elements[i])
        {
            Some(Element::Transistor { device, .. }) => {
                device.set_delta_vt(delta);
                Ok(())
            }
            _ => Err(SpiceError::UnknownElement {
                name: name.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::process::Technology;
    use sram_device::units::Meter;

    #[test]
    fn ground_aliases() {
        let mut ckt = Circuit::new();
        assert_eq!(ckt.node("0"), NodeId::GROUND);
        assert_eq!(ckt.node("gnd"), NodeId::GROUND);
        assert!(NodeId::GROUND.is_ground());
    }

    #[test]
    fn node_interning() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("a");
        assert_eq!(a, a2);
        assert_eq!(ckt.node_count(), 2);
        assert_eq!(ckt.node_name(a), "a");
        assert_eq!(ckt.find_node("a"), Some(a));
        assert_eq!(ckt.find_node("zz"), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, NodeId::GROUND, Ohm::new(1.0))
            .unwrap();
        let err = ckt
            .resistor("R1", a, NodeId::GROUND, Ohm::new(2.0))
            .unwrap_err();
        assert!(matches!(err, SpiceError::DuplicateElement { .. }));
    }

    #[test]
    fn invalid_values_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(ckt.resistor("R", a, NodeId::GROUND, Ohm::new(0.0)).is_err());
        assert!(ckt
            .capacitor("C", a, NodeId::GROUND, Farad::new(-1.0))
            .is_err());
        assert!(ckt
            .vsource("V", a, NodeId::GROUND, Volt::new(f64::NAN))
            .is_err());
        assert!(ckt
            .isource("I", a, NodeId::GROUND, Ampere::new(f64::INFINITY))
            .is_err());
    }

    #[test]
    fn unknown_node_rejected() {
        let mut ckt = Circuit::new();
        let foreign = NodeId(99);
        let err = ckt
            .resistor("R", foreign, NodeId::GROUND, Ohm::new(1.0))
            .unwrap_err();
        assert!(matches!(err, SpiceError::UnknownNode { node: 99 }));
    }

    #[test]
    fn vsource_branches_are_sequential() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, NodeId::GROUND, Volt::new(1.0))
            .unwrap();
        ckt.vsource("V2", b, NodeId::GROUND, Volt::new(2.0))
            .unwrap();
        assert_eq!(ckt.branch_count(), 2);
        assert_eq!(ckt.unknown_count(), 2 + 2);
    }

    #[test]
    fn vcvs_allocates_branch_and_vccs_does_not() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vcvs("E1", a, NodeId::GROUND, b, NodeId::GROUND, 2.0)
            .unwrap();
        assert_eq!(ckt.branch_count(), 1);
        ckt.vccs("G1", NodeId::GROUND, a, b, NodeId::GROUND, 1e-3)
            .unwrap();
        assert_eq!(ckt.branch_count(), 1);
        assert_eq!(ckt.unknown_count(), 2 + 1);
    }

    #[test]
    fn controlled_source_values_must_be_finite() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(ckt
            .vcvs("E1", a, NodeId::GROUND, a, NodeId::GROUND, f64::NAN)
            .is_err());
        assert!(ckt
            .vccs("G1", a, NodeId::GROUND, a, NodeId::GROUND, f64::INFINITY)
            .is_err());
        // A failed vcvs must not leak a phantom MNA branch.
        assert_eq!(ckt.branch_count(), 0);
    }

    #[test]
    fn failed_duplicate_vsource_does_not_leak_branch() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, NodeId::GROUND, Volt::new(1.0))
            .unwrap();
        assert!(ckt
            .vsource("V1", a, NodeId::GROUND, Volt::new(2.0))
            .is_err());
        assert_eq!(ckt.branch_count(), 1);
    }

    #[test]
    fn set_vsource_updates_value() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, NodeId::GROUND, Volt::new(1.0))
            .unwrap();
        ckt.set_vsource("V1", Volt::new(0.5)).unwrap();
        match ckt.element("V1").unwrap() {
            Element::VoltageSource { voltage, .. } => {
                assert_eq!(*voltage, Volt::new(0.5));
            }
            _ => panic!("wrong element"),
        }
        assert!(ckt.set_vsource("nope", Volt::new(0.0)).is_err());
    }

    #[test]
    fn set_transistor_delta_vt_updates_device() {
        let mut ckt = Circuit::new();
        let g = ckt.node("g");
        let d = ckt.node("d");
        let tech = Technology::ptm_22nm();
        let dev = Mosfet::new(
            tech.nmos.clone(),
            Meter::from_nanometers(88.0),
            Meter::from_nanometers(22.0),
        )
        .unwrap();
        ckt.transistor("M1", g, d, NodeId::GROUND, dev).unwrap();
        ckt.set_transistor_delta_vt("M1", Volt::from_millivolts(25.0))
            .unwrap();
        match ckt.element("M1").unwrap() {
            Element::Transistor { device, .. } => {
                assert_eq!(device.delta_vt(), Volt::from_millivolts(25.0));
            }
            _ => panic!("wrong element"),
        }
        assert!(ckt.set_transistor_delta_vt("nope", Volt::new(0.0)).is_err());
    }
}
