//! DC operating-point analysis.
//!
//! Modified nodal analysis with Newton-Raphson linearization. Nonlinear
//! devices (MOSFETs) are stamped each iteration as a linearized conductance
//! network plus an equivalent current source; convergence aids are the
//! classic trio — voltage-step damping, gmin stepping, and source stepping —
//! which together reliably land even bistable circuits like SRAM cells on a
//! solution (the *which* stable state question is handled by seeding the
//! initial guess, see [`DcSolver::guess`]).

use crate::circuit::{Circuit, NodeId};
use crate::elements::Element;
use crate::error::SpiceError;
use crate::linear::DenseMatrix;
use sram_device::units::{Ampere, Volt};

/// Tuning knobs for the Newton iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonOptions {
    /// Maximum Newton iterations per solve attempt.
    pub max_iterations: usize,
    /// Absolute KCL residual tolerance in amperes.
    pub abstol: f64,
    /// Node-voltage update tolerance in volts.
    pub vntol: f64,
    /// Largest node-voltage change applied per iteration (damping), volts.
    pub max_step: f64,
    /// Conductance from every node to ground added for stability, siemens.
    pub gmin: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            abstol: 1e-12,
            vntol: 1e-9,
            max_step: 0.4,
            gmin: 1e-12,
        }
    }
}

/// Result of a DC analysis: node voltages plus voltage-source branch currents.
#[derive(Debug, Clone)]
pub struct DcSolution {
    node_voltages: Vec<f64>,
    branch_currents: Vec<f64>,
}

impl DcSolution {
    /// Voltage at a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id does not belong to the solved circuit.
    pub fn voltage(&self, node: NodeId) -> Volt {
        if node.is_ground() {
            return Volt::new(0.0);
        }
        Volt::new(self.node_voltages[node.index() - 1])
    }

    /// Branch current of the `branch`-th voltage source.
    ///
    /// Positive current flows *into* the positive terminal (source
    /// absorbing); a battery delivering power reports a negative value.
    ///
    /// # Panics
    ///
    /// Panics if `branch` is out of range.
    pub fn branch_current(&self, branch: usize) -> Ampere {
        Ampere::new(self.branch_currents[branch])
    }

    /// Current through a named voltage source, same sign convention as
    /// [`DcSolution::branch_current`].
    pub fn vsource_current(&self, circuit: &Circuit, name: &str) -> Option<Ampere> {
        match circuit.element(name)? {
            Element::VoltageSource { branch, .. } => Some(self.branch_current(*branch)),
            _ => None,
        }
    }

    /// Raw unknown vector (node voltages then branch currents), useful as a
    /// warm start for a subsequent solve.
    pub fn into_unknowns(self) -> Vec<f64> {
        let mut v = self.node_voltages;
        v.extend(self.branch_currents);
        v
    }
}

/// DC operating-point solver bound to a circuit.
#[derive(Debug, Clone)]
pub struct DcSolver<'a> {
    circuit: &'a Circuit,
    options: NewtonOptions,
    guess: Vec<f64>,
}

impl<'a> DcSolver<'a> {
    /// Creates a solver with default options and an all-zero initial guess.
    pub fn new(circuit: &'a Circuit) -> Self {
        Self {
            circuit,
            options: NewtonOptions::default(),
            guess: vec![0.0; circuit.unknown_count()],
        }
    }

    /// Replaces the Newton options.
    pub fn options(mut self, options: NewtonOptions) -> Self {
        self.options = options;
        self
    }

    /// Seeds the initial guess for one node (volts). Essential for bistable
    /// circuits: seed `Q` high and `QB` low to converge on the "1" state.
    pub fn guess(mut self, node: NodeId, volts: Volt) -> Self {
        if !node.is_ground() {
            self.guess[node.index() - 1] = volts.volts();
        }
        self
    }

    /// Seeds the full unknown vector (e.g. from a previous solution).
    ///
    /// # Panics
    ///
    /// Panics if `unknowns.len()` does not match the circuit.
    pub fn warm_start(mut self, unknowns: Vec<f64>) -> Self {
        assert_eq!(unknowns.len(), self.circuit.unknown_count());
        self.guess = unknowns;
        self
    }

    /// Runs the analysis.
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] for structurally defective circuits and
    /// [`SpiceError::NoConvergence`] if Newton, gmin stepping *and* source
    /// stepping all fail.
    pub fn solve(&self) -> Result<DcSolution, SpiceError> {
        // Plain Newton first.
        if let Ok(sol) = newton_solve(self.circuit, &self.guess, &self.options, 1.0, None) {
            return Ok(sol);
        }
        // Gmin stepping: start very conductive, relax toward the real circuit.
        let mut x = self.guess.clone();
        let mut gmin = 1e-3;
        let mut stepped_ok = true;
        while gmin > self.options.gmin {
            match newton_solve(self.circuit, &x, &self.options, 1.0, Some(gmin)) {
                Ok(sol) => x = sol.into_unknowns(),
                Err(_) => {
                    stepped_ok = false;
                    break;
                }
            }
            gmin /= 10.0;
        }
        if stepped_ok {
            if let Ok(sol) = newton_solve(self.circuit, &x, &self.options, 1.0, None) {
                return Ok(sol);
            }
        }
        // Source stepping: ramp all independent sources from zero.
        let mut x = self.guess.clone();
        for k in 1..=20 {
            let alpha = k as f64 / 20.0;
            match newton_solve(self.circuit, &x, &self.options, alpha, None) {
                Ok(sol) => x = sol.into_unknowns(),
                Err(e) => return Err(e),
            }
        }
        newton_solve(self.circuit, &x, &self.options, 1.0, None)
    }
}

/// One damped Newton-Raphson run at a fixed source scaling `alpha` and an
/// optional gmin override. Shared by DC and transient analyses.
pub(crate) fn newton_solve(
    circuit: &Circuit,
    guess: &[f64],
    options: &NewtonOptions,
    alpha: f64,
    gmin_override: Option<f64>,
) -> Result<DcSolution, SpiceError> {
    let n_nodes = circuit.node_count() - 1;
    let n = circuit.unknown_count();
    let mut x = guess.to_vec();
    let gmin = gmin_override.unwrap_or(options.gmin);

    for iter in 0..options.max_iterations {
        let mut jac = DenseMatrix::zeros(n);
        let mut residual = vec![0.0; n];
        stamp_all(circuit, &x, alpha, gmin, &mut jac, &mut residual, None);

        // Check KCL residual on node rows only (branch rows are constraints).
        let max_res = residual[..n_nodes]
            .iter()
            .fold(0.0f64, |m, r| m.max(r.abs()));

        // Solve J * dx = -residual.
        let rhs: Vec<f64> = residual.iter().map(|r| -r).collect();
        let dx = jac.solve(&rhs)?;
        let max_dv = dx[..n_nodes].iter().fold(0.0f64, |m, d| m.max(d.abs()));

        // Damped update.
        let scale = if max_dv > options.max_step {
            options.max_step / max_dv
        } else {
            1.0
        };
        for (xi, di) in x.iter_mut().zip(dx.iter()) {
            *xi += scale * di;
        }

        if max_dv * scale < options.vntol && max_res < options.abstol.max(1e-15) && iter > 0 {
            let (nv, bc) = x.split_at(n_nodes);
            return Ok(DcSolution {
                node_voltages: nv.to_vec(),
                branch_currents: bc.to_vec(),
            });
        }
    }

    // Final residual for the error report.
    let mut jac = DenseMatrix::zeros(n);
    let mut residual = vec![0.0; n];
    stamp_all(circuit, &x, alpha, gmin, &mut jac, &mut residual, None);
    let max_res = residual[..n_nodes]
        .iter()
        .fold(0.0f64, |m, r| m.max(r.abs()));
    Err(SpiceError::NoConvergence {
        iterations: options.max_iterations,
        residual: max_res,
    })
}

/// Companion-model information for transient analysis: for each capacitor,
/// conductance `C/dt` and the equivalent current derived from the previous
/// time-step solution.
pub(crate) struct TransientStamp<'a> {
    /// 1 / dt in 1/seconds.
    pub inv_dt: f64,
    /// Node voltages at the previous accepted time point (length = nodes-1).
    pub previous: &'a [f64],
}

/// Stamps every element into the Jacobian and residual at state `x`.
///
/// `residual[row]` accumulates the sum of currents *leaving* each node;
/// voltage-source rows hold the constraint `v_pos − v_neg − V`.
pub(crate) fn stamp_all(
    circuit: &Circuit,
    x: &[f64],
    alpha: f64,
    gmin: f64,
    jac: &mut DenseMatrix,
    residual: &mut [f64],
    transient: Option<&TransientStamp<'_>>,
) {
    let n_nodes = circuit.node_count() - 1;
    let volt = |node: NodeId| -> f64 {
        if node.is_ground() {
            0.0
        } else {
            x[node.index() - 1]
        }
    };
    // Row/col index of a node in the unknown vector, or None for ground.
    let idx = |node: NodeId| -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    };

    // Gmin to ground on every node row for numerical robustness.
    for i in 0..n_nodes {
        jac.add(i, i, gmin);
        residual[i] += gmin * x[i];
    }

    for element in circuit.elements() {
        match element {
            Element::Resistor {
                a, b, resistance, ..
            } => {
                let g = 1.0 / resistance.ohms();
                let (va, vb) = (volt(*a), volt(*b));
                let i_ab = g * (va - vb);
                if let Some(ia) = idx(*a) {
                    residual[ia] += i_ab;
                    jac.add(ia, ia, g);
                    if let Some(ib) = idx(*b) {
                        jac.add(ia, ib, -g);
                    }
                }
                if let Some(ib) = idx(*b) {
                    residual[ib] -= i_ab;
                    jac.add(ib, ib, g);
                    if let Some(ia) = idx(*a) {
                        jac.add(ib, ia, -g);
                    }
                }
            }
            Element::Capacitor {
                a, b, capacitance, ..
            } => {
                let Some(tr) = transient else {
                    continue; // open circuit in DC
                };
                // Backward Euler companion: i = C/dt * (v - v_prev).
                let g = capacitance.farads() * tr.inv_dt;
                let prev = |node: NodeId| -> f64 {
                    if node.is_ground() {
                        0.0
                    } else {
                        tr.previous[node.index() - 1]
                    }
                };
                let (va, vb) = (volt(*a), volt(*b));
                let (pa, pb) = (prev(*a), prev(*b));
                let i_ab = g * ((va - vb) - (pa - pb));
                if let Some(ia) = idx(*a) {
                    residual[ia] += i_ab;
                    jac.add(ia, ia, g);
                    if let Some(ib) = idx(*b) {
                        jac.add(ia, ib, -g);
                    }
                }
                if let Some(ib) = idx(*b) {
                    residual[ib] -= i_ab;
                    jac.add(ib, ib, g);
                    if let Some(ia) = idx(*a) {
                        jac.add(ib, ia, -g);
                    }
                }
            }
            Element::VoltageSource {
                pos,
                neg,
                voltage,
                branch,
                ..
            } => {
                let row = n_nodes + branch;
                let i_br = x[row];
                if let Some(ip) = idx(*pos) {
                    residual[ip] += i_br;
                    jac.add(ip, row, 1.0);
                    jac.add(row, ip, 1.0);
                }
                if let Some(in_) = idx(*neg) {
                    residual[in_] -= i_br;
                    jac.add(in_, row, -1.0);
                    jac.add(row, in_, -1.0);
                }
                residual[row] += volt(*pos) - volt(*neg) - alpha * voltage.volts();
            }
            Element::CurrentSource {
                from, to, current, ..
            } => {
                let i = alpha * current.amps();
                if let Some(ifrom) = idx(*from) {
                    residual[ifrom] += i;
                }
                if let Some(ito) = idx(*to) {
                    residual[ito] -= i;
                }
            }
            Element::Vcvs {
                pos,
                neg,
                cpos,
                cneg,
                gain,
                branch,
                ..
            } => {
                // Branch constraint: v_pos − v_neg − gain·(v_cpos − v_cneg) = 0.
                // Controlled sources are not ramped by source stepping, so no
                // alpha factor here.
                let row = n_nodes + branch;
                let i_br = x[row];
                if let Some(ip) = idx(*pos) {
                    residual[ip] += i_br;
                    jac.add(ip, row, 1.0);
                    jac.add(row, ip, 1.0);
                }
                if let Some(in_) = idx(*neg) {
                    residual[in_] -= i_br;
                    jac.add(in_, row, -1.0);
                    jac.add(row, in_, -1.0);
                }
                if let Some(icp) = idx(*cpos) {
                    jac.add(row, icp, -gain);
                }
                if let Some(icn) = idx(*cneg) {
                    jac.add(row, icn, *gain);
                }
                residual[row] += volt(*pos) - volt(*neg) - gain * (volt(*cpos) - volt(*cneg));
            }
            Element::Vccs {
                from,
                to,
                cpos,
                cneg,
                transconductance,
                ..
            } => {
                let gm = *transconductance;
                let i = gm * (volt(*cpos) - volt(*cneg));
                if let Some(ifrom) = idx(*from) {
                    residual[ifrom] += i;
                    if let Some(icp) = idx(*cpos) {
                        jac.add(ifrom, icp, gm);
                    }
                    if let Some(icn) = idx(*cneg) {
                        jac.add(ifrom, icn, -gm);
                    }
                }
                if let Some(ito) = idx(*to) {
                    residual[ito] -= i;
                    if let Some(icp) = idx(*cpos) {
                        jac.add(ito, icp, -gm);
                    }
                    if let Some(icn) = idx(*cneg) {
                        jac.add(ito, icn, gm);
                    }
                }
            }
            Element::Transistor {
                gate,
                drain,
                source,
                device,
                ..
            } => {
                let (vg, vd, vs) = (
                    Volt::new(volt(*gate)),
                    Volt::new(volt(*drain)),
                    Volt::new(volt(*source)),
                );
                let id = device.drain_current(vg, vd, vs).amps();
                let gm = device.gm(vg, vd, vs);
                let gd = device.gds(vg, vd, vs);
                // The model depends only on terminal differences, so the
                // source partial is exactly -(gm + gd).
                let gs = -(gm + gd);
                if let Some(idr) = idx(*drain) {
                    residual[idr] += id;
                    if let Some(ig) = idx(*gate) {
                        jac.add(idr, ig, gm);
                    }
                    jac.add(idr, idr, gd);
                    if let Some(is) = idx(*source) {
                        jac.add(idr, is, gs);
                    }
                }
                if let Some(is) = idx(*source) {
                    residual[is] -= id;
                    if let Some(ig) = idx(*gate) {
                        jac.add(is, ig, -gm);
                    }
                    if let Some(idr) = idx(*drain) {
                        jac.add(is, idr, -gd);
                    }
                    jac.add(is, is, -gs);
                }
            }
        }
    }
}

/// Sweeps the value of a named voltage source, warm-starting each point from
/// the previous solution (natural continuation — exactly what a butterfly
/// curve needs).
///
/// # Errors
///
/// Propagates solver errors; returns [`SpiceError::UnknownElement`] if the
/// named element is not a voltage source.
pub fn dc_sweep(
    circuit: &mut Circuit,
    source: &str,
    values: &[Volt],
    options: &NewtonOptions,
    initial: Option<Vec<f64>>,
) -> Result<Vec<DcSolution>, SpiceError> {
    match circuit.element(source) {
        Some(Element::VoltageSource { .. }) => {}
        _ => {
            return Err(SpiceError::UnknownElement {
                name: source.to_owned(),
            })
        }
    }
    let mut results = Vec::with_capacity(values.len());
    let mut warm = initial;
    for &v in values {
        circuit.set_vsource(source, v)?;
        let mut solver = DcSolver::new(circuit).options(options.clone());
        if let Some(w) = warm.take() {
            solver = solver.warm_start(w);
        }
        let sol = solver.solve()?;
        warm = Some(sol.clone().into_unknowns());
        results.push(sol);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::mosfet::Mosfet;
    use sram_device::process::Technology;
    use sram_device::units::{Meter, Ohm};

    #[test]
    fn voltage_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let mid = ckt.node("mid");
        ckt.vsource("V1", vin, NodeId::GROUND, Volt::new(1.0))
            .unwrap();
        ckt.resistor("R1", vin, mid, Ohm::new(1e3)).unwrap();
        ckt.resistor("R2", mid, NodeId::GROUND, Ohm::new(1e3))
            .unwrap();
        let op = DcSolver::new(&ckt).solve().unwrap();
        assert!((op.voltage(mid).volts() - 0.5).abs() < 1e-6);
        // Branch current: 1V across 2k = 0.5 mA delivered, so the MNA branch
        // current (into the + terminal) is -0.5 mA.
        let i = op.vsource_current(&ckt, "V1").unwrap();
        assert!((i.amps() + 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.isource("I1", NodeId::GROUND, a, Ampere::from_microamps(10.0))
            .unwrap();
        ckt.resistor("R1", a, NodeId::GROUND, Ohm::new(1e5))
            .unwrap();
        let op = DcSolver::new(&ckt).solve().unwrap();
        assert!((op.voltage(a).volts() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn superposition_of_sources() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, NodeId::GROUND, Volt::new(2.0))
            .unwrap();
        ckt.resistor("R1", a, b, Ohm::new(1e3)).unwrap();
        ckt.resistor("R2", b, NodeId::GROUND, Ohm::new(1e3))
            .unwrap();
        ckt.isource("I1", NodeId::GROUND, b, Ampere::new(1e-3))
            .unwrap();
        // v_b = (2/1k + 1m) / (2/1k)... nodal: (vb-2)/1k + vb/1k = 1m
        // 2vb/1k = 1m + 2m = 3m -> vb = 1.5
        let op = DcSolver::new(&ckt).solve().unwrap();
        assert!((op.voltage(b).volts() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn nmos_common_source_inverter_swings() {
        let tech = Technology::ptm_22nm();
        let dev = Mosfet::new(
            tech.nmos.clone(),
            Meter::from_nanometers(88.0),
            Meter::from_nanometers(22.0),
        )
        .unwrap();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, NodeId::GROUND, Volt::new(0.95))
            .unwrap();
        ckt.vsource("VIN", vin, NodeId::GROUND, Volt::new(0.0))
            .unwrap();
        ckt.resistor("RL", vdd, out, Ohm::new(50e3)).unwrap();
        ckt.transistor("M1", vin, out, NodeId::GROUND, dev).unwrap();

        let op_off = DcSolver::new(&ckt).solve().unwrap();
        assert!(op_off.voltage(out).volts() > 0.9, "output should stay high");

        ckt.set_vsource("VIN", Volt::new(0.95)).unwrap();
        let op_on = DcSolver::new(&ckt).solve().unwrap();
        assert!(op_on.voltage(out).volts() < 0.2, "output should pull low");
    }

    #[test]
    fn floating_node_reports_singular_or_converges_to_gmin_ground() {
        // A node connected only through a capacitor is floating in DC; the
        // gmin stamp keeps the matrix solvable and parks it at 0 V.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, NodeId::GROUND, Volt::new(1.0))
            .unwrap();
        ckt.capacitor("C1", a, b, sram_device::units::Farad::from_femtofarads(1.0))
            .unwrap();
        let op = DcSolver::new(&ckt).solve().unwrap();
        assert!(op.voltage(b).volts().abs() < 1e-6);
    }

    #[test]
    fn sweep_warm_starts() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let mid = ckt.node("mid");
        ckt.vsource("V1", vin, NodeId::GROUND, Volt::new(0.0))
            .unwrap();
        ckt.resistor("R1", vin, mid, Ohm::new(1e3)).unwrap();
        ckt.resistor("R2", mid, NodeId::GROUND, Ohm::new(3e3))
            .unwrap();
        let values: Vec<Volt> = (0..=10).map(|i| Volt::new(i as f64 * 0.1)).collect();
        let sols = dc_sweep(&mut ckt, "V1", &values, &NewtonOptions::default(), None).unwrap();
        assert_eq!(sols.len(), 11);
        for (sol, v) in sols.iter().zip(values.iter()) {
            assert!((sol.voltage(mid).volts() - 0.75 * v.volts()).abs() < 1e-6);
        }
    }

    #[test]
    fn vcvs_amplifies_control_voltage() {
        // E1 output = 3 × the divider midpoint (0.5 V) = 1.5 V.
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let mid = ckt.node("mid");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, NodeId::GROUND, Volt::new(1.0))
            .unwrap();
        ckt.resistor("R1", vin, mid, Ohm::new(1e3)).unwrap();
        ckt.resistor("R2", mid, NodeId::GROUND, Ohm::new(1e3))
            .unwrap();
        ckt.vcvs("E1", out, NodeId::GROUND, mid, NodeId::GROUND, 3.0)
            .unwrap();
        ckt.resistor("RL", out, NodeId::GROUND, Ohm::new(1e4))
            .unwrap();
        let op = DcSolver::new(&ckt).solve().unwrap();
        assert!((op.voltage(out).volts() - 1.5).abs() < 1e-6);
        // The ideal control terminals draw no current: the divider midpoint
        // is unchanged by the VCVS.
        assert!((op.voltage(mid).volts() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn vccs_drives_expected_current_into_load() {
        // G1 pushes gm·v(ctl) = 1 mS × 1 V = 1 mA into a 2 kΩ load → 2 V.
        let mut ckt = Circuit::new();
        let ctl = ckt.node("ctl");
        let out = ckt.node("out");
        ckt.vsource("V1", ctl, NodeId::GROUND, Volt::new(1.0))
            .unwrap();
        ckt.vccs("G1", NodeId::GROUND, out, ctl, NodeId::GROUND, 1e-3)
            .unwrap();
        ckt.resistor("RL", out, NodeId::GROUND, Ohm::new(2e3))
            .unwrap();
        let op = DcSolver::new(&ckt).solve().unwrap();
        assert!((op.voltage(out).volts() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn vcvs_negative_feedback_divides() {
        // Unity-gain-style arrangement: E1 = 2 × (vin − out) driving out
        // directly ⇒ out = 2·vin/(1+2) ... solve analytically:
        // out = 2(vin − out) ⇒ out = 2/3 vin.
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, NodeId::GROUND, Volt::new(0.9))
            .unwrap();
        ckt.vcvs("E1", out, NodeId::GROUND, vin, out, 2.0).unwrap();
        ckt.resistor("RL", out, NodeId::GROUND, Ohm::new(1e4))
            .unwrap();
        let op = DcSolver::new(&ckt).solve().unwrap();
        assert!((op.voltage(out).volts() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn sweep_requires_voltage_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, NodeId::GROUND, Ohm::new(1e3))
            .unwrap();
        let err = dc_sweep(
            &mut ckt,
            "R1",
            &[Volt::new(0.0)],
            &NewtonOptions::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SpiceError::UnknownElement { .. }));
    }
}
