//! Circuit element definitions.

use crate::circuit::NodeId;
use sram_device::mosfet::Mosfet;
use sram_device::units::{Ampere, Farad, Ohm, Volt};

/// One element of a netlist.
///
/// Elements are created through the [`crate::circuit::Circuit`] builder
/// methods, which validate values and keep name bookkeeping; the enum itself
/// is exposed so analysis passes can walk the netlist.
#[derive(Debug, Clone)]
pub enum Element {
    /// Linear resistor between nodes `a` and `b`.
    Resistor {
        /// Unique element name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance value.
        resistance: Ohm,
    },
    /// Linear capacitor between nodes `a` and `b`. Open in DC; integrated
    /// with backward Euler in transient analysis.
    Capacitor {
        /// Unique element name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance value.
        capacitance: Farad,
    },
    /// Ideal independent voltage source.
    ///
    /// The associated MNA branch current is positive when conventional
    /// current flows *into* the positive terminal (source absorbing); a
    /// battery powering a load therefore reports a negative branch current.
    VoltageSource {
        /// Unique element name.
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source value.
        voltage: Volt,
        /// Index of the MNA branch unknown assigned to this source.
        branch: usize,
    },
    /// Ideal independent current source pushing conventional current from
    /// node `from` to node `to` through the source.
    CurrentSource {
        /// Unique element name.
        name: String,
        /// Terminal the current is drawn from.
        from: NodeId,
        /// Terminal the current is delivered to.
        to: NodeId,
        /// Source value.
        current: Ampere,
    },
    /// MOSFET (bulk implicitly tied to the appropriate rail; the device model
    /// is source-referenced).
    Transistor {
        /// Unique element name.
        name: String,
        /// Gate terminal.
        gate: NodeId,
        /// Drain terminal.
        drain: NodeId,
        /// Source terminal.
        source: NodeId,
        /// Sized device instance (carries its own ΔVT shift).
        device: Mosfet,
    },
    /// Voltage-controlled voltage source (SPICE `E` card):
    /// `v(pos) − v(neg) = gain · (v(cpos) − v(cneg))`.
    ///
    /// Like an independent voltage source it owns an MNA branch unknown; the
    /// branch current follows the same sign convention (positive into `pos`).
    /// Controlled sources are *not* ramped by source stepping — only
    /// independent sources are.
    Vcvs {
        /// Unique element name.
        name: String,
        /// Positive output terminal.
        pos: NodeId,
        /// Negative output terminal.
        neg: NodeId,
        /// Positive controlling terminal (sensed, draws no current).
        cpos: NodeId,
        /// Negative controlling terminal (sensed, draws no current).
        cneg: NodeId,
        /// Dimensionless voltage gain.
        gain: f64,
        /// Index of the MNA branch unknown assigned to this source.
        branch: usize,
    },
    /// Voltage-controlled current source (SPICE `G` card): pushes
    /// `gm · (v(cpos) − v(cneg))` of conventional current from `from` to `to`
    /// through the source, i.e. it is delivered into node `to`.
    ///
    /// The controlling terminals are sensed and draw no current.
    Vccs {
        /// Unique element name.
        name: String,
        /// Terminal the current is drawn from.
        from: NodeId,
        /// Terminal the current is delivered to.
        to: NodeId,
        /// Positive controlling terminal.
        cpos: NodeId,
        /// Negative controlling terminal.
        cneg: NodeId,
        /// Transconductance in siemens.
        transconductance: f64,
    },
}

impl Element {
    /// The element's unique name.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::VoltageSource { name, .. }
            | Element::CurrentSource { name, .. }
            | Element::Transistor { name, .. }
            | Element::Vcvs { name, .. }
            | Element::Vccs { name, .. } => name,
        }
    }

    /// Nodes this element touches.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => vec![*a, *b],
            Element::VoltageSource { pos, neg, .. } => vec![*pos, *neg],
            Element::CurrentSource { from, to, .. } => vec![*from, *to],
            Element::Transistor {
                gate,
                drain,
                source,
                ..
            } => vec![*gate, *drain, *source],
            Element::Vcvs {
                pos,
                neg,
                cpos,
                cneg,
                ..
            } => vec![*pos, *neg, *cpos, *cneg],
            Element::Vccs {
                from,
                to,
                cpos,
                cneg,
                ..
            } => vec![*from, *to, *cpos, *cneg],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn element_names_and_nodes() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.resistor("R1", a, b, Ohm::new(100.0)).unwrap();
        let el = ckt.element("R1").unwrap();
        assert_eq!(el.name(), "R1");
        assert_eq!(el.nodes(), vec![a, b]);
    }
}
