//! Error type for circuit construction and simulation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// An element referenced a node id that does not exist in the circuit.
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
    /// An element name was reused.
    DuplicateElement {
        /// The clashing element name.
        name: String,
    },
    /// A named element was not found.
    UnknownElement {
        /// The requested element name.
        name: String,
    },
    /// An element value is non-physical (negative resistance, NaN source...).
    InvalidValue {
        /// Element name.
        name: String,
        /// What was wrong.
        reason: &'static str,
    },
    /// The nodal matrix became singular (floating node, short loop...).
    SingularMatrix,
    /// Newton-Raphson failed to converge within the iteration budget, even
    /// after gmin and source stepping.
    NoConvergence {
        /// Iterations attempted in the final stage.
        iterations: usize,
        /// Residual norm at the last iterate, in amperes.
        residual: f64,
    },
    /// A transient step size or stop time was invalid.
    InvalidTimestep,
    /// A SPICE deck could not be parsed.
    Parse {
        /// 1-based line number of the offending card.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownNode { node } => write!(f, "unknown node id {node}"),
            Self::DuplicateElement { name } => write!(f, "duplicate element name {name:?}"),
            Self::UnknownElement { name } => write!(f, "unknown element {name:?}"),
            Self::InvalidValue { name, reason } => {
                write!(f, "invalid value for element {name:?}: {reason}")
            }
            Self::SingularMatrix => write!(f, "singular nodal matrix (floating node?)"),
            Self::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "newton iteration did not converge after {iterations} iterations (residual {residual:.3e} A)"
            ),
            Self::InvalidTimestep => write!(f, "invalid transient timestep or stop time"),
            Self::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(SpiceError::SingularMatrix.to_string().contains("singular"));
        assert!(SpiceError::UnknownNode { node: 7 }
            .to_string()
            .contains('7'));
        let e = SpiceError::NoConvergence {
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpiceError>();
    }
}
