//! # nanospice
//!
//! A deliberately small nonlinear circuit simulator: modified nodal analysis,
//! damped Newton-Raphson with gmin/source stepping, and fixed-step backward
//! Euler transients. It exists to characterize the 6T and 8T SRAM bitcells of
//! the DATE 2016 hybrid-SRAM paper from first principles — static noise
//! margins via DC sweeps, access timing via bitline transients — using the
//! device models of [`sram_device`].
//!
//! This crate substitutes for the paper's HSPICE runs (DESIGN.md §2). It is
//! not a general-purpose SPICE: elements are limited to R, C, independent V/I
//! sources, voltage-controlled sources (VCVS/VCCS, for behavioural sense-amp
//! and driver models) and MOSFETs — the vocabulary of an SRAM cell plus its
//! bitline environment. Netlists can also be read from and written to the
//! classic SPICE deck text format via [`parser`].
//!
//! # Examples
//!
//! A CMOS inverter transfer point:
//!
//! ```
//! use nanospice::prelude::*;
//! use sram_device::prelude::*;
//!
//! let tech = Technology::ptm_22nm();
//! let nm = Mosfet::new(tech.nmos.clone(), Meter::from_nanometers(88.0),
//!                      Meter::from_nanometers(22.0))?;
//! let pm = Mosfet::new(tech.pmos.clone(), Meter::from_nanometers(88.0),
//!                      Meter::from_nanometers(22.0))?;
//!
//! let mut ckt = Circuit::new();
//! let vdd = ckt.node("vdd");
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.vsource("VDD", vdd, NodeId::GROUND, Volt::new(0.95))?;
//! ckt.vsource("VIN", vin, NodeId::GROUND, Volt::new(0.95 / 2.0))?;
//! ckt.transistor("MN", vin, out, NodeId::GROUND, nm)?;
//! ckt.transistor("MP", vin, out, vdd, pm)?;
//!
//! let op = DcSolver::new(&ckt).guess(out, Volt::new(0.5)).solve()?;
//! let v = op.voltage(out).volts();
//! assert!(v > 0.05 && v < 0.9, "mid-rail input lands between the rails");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod circuit;
pub mod dc;
pub mod elements;
pub mod error;
pub mod linear;
pub mod parser;
pub mod transient;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::circuit::{Circuit, NodeId};
    pub use crate::dc::{dc_sweep, DcSolution, DcSolver, NewtonOptions};
    pub use crate::elements::Element;
    pub use crate::error::SpiceError;
    pub use crate::parser::{parse_deck, write_deck, Deck};
    pub use crate::transient::{transient, transient_with_stimulus, TransientOptions, Waveform};
}
