//! Dense linear algebra for modified nodal analysis.
//!
//! Circuit matrices here are tiny (an SRAM bitcell has < 12 unknowns), so a
//! dense LU factorization with partial pivoting is both the simplest and the
//! fastest appropriate tool. No external linear-algebra dependency is used.

use crate::error::SpiceError;

/// A dense, row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.n && col < self.n,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.n + col]
    }

    /// Writes entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.n && col < self.n,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` into entry `(row, col)` — the fundamental "stamp"
    /// operation of nodal analysis.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.n && col < self.n,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.n + col] += value;
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Computes `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Solves `self * x = b` in place via LU with partial pivoting.
    ///
    /// The matrix is consumed (factored in place); callers that need the
    /// original should clone first. Returns the solution vector.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] if a pivot underflows, which in
    /// circuit terms means a floating node or an inconsistent source loop.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    #[allow(clippy::needless_range_loop)] // index form mirrors the textbook LU
    pub fn solve(mut self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivot: find the largest magnitude in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_mag = self.get(k, k).abs();
            for r in (k + 1)..n {
                let mag = self.get(r, k).abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < 1e-300 {
                return Err(SpiceError::SingularMatrix);
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = self.get(k, c);
                    self.set(k, c, self.get(pivot_row, c));
                    self.set(pivot_row, c, tmp);
                }
                perm.swap(k, pivot_row);
                x.swap(k, pivot_row);
            }
            let pivot = self.get(k, k);
            for r in (k + 1)..n {
                let factor = self.get(r, k) / pivot;
                if factor == 0.0 {
                    continue;
                }
                self.set(r, k, factor);
                for c in (k + 1)..n {
                    let v = self.get(r, c) - factor * self.get(k, c);
                    self.set(r, c, v);
                }
                x[r] -= factor * x[k];
            }
        }

        // Back substitution.
        for k in (0..n).rev() {
            let mut sum = x[k];
            for c in (k + 1)..n {
                sum -= self.get(k, c) * x[c];
            }
            x[k] = sum / self.get(k, k);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = DenseMatrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_small_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5]
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 3.0);
        let x = m.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] -> x = [3, 2]
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        assert_eq!(
            m.solve(&[1.0, 2.0]).unwrap_err(),
            SpiceError::SingularMatrix
        );
    }

    #[test]
    fn mul_vec_matches_solve() {
        let mut m = DenseMatrix::zeros(3);
        let entries = [
            (0, 0, 4.0),
            (0, 1, 1.0),
            (0, 2, 0.5),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 2, -1.0),
            (2, 0, 0.5),
            (2, 1, -1.0),
            (2, 2, 5.0),
        ];
        for (r, c, v) in entries {
            m.set(r, c, v);
        }
        let x_true = [1.0, -2.0, 0.5];
        let b = m.mul_vec(&x_true);
        let x = m.clone().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn stamp_accumulates() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.5);
        m.add(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 4.0);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let m = DenseMatrix::zeros(2);
        let _ = m.get(2, 0);
    }
}
