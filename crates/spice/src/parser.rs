//! SPICE deck text format: parser and writer.
//!
//! A minimal but faithful subset of the classic Berkeley SPICE input
//! language, so that netlists can be exchanged with external tools (and the
//! netlists built programmatically by `sram-bitcell` can be exported for
//! cross-checking in a full SPICE):
//!
//! * the first non-blank line is the **title**;
//! * `*` starts a comment line, `;` a trailing comment;
//! * `+` at the start of a line continues the previous card;
//! * `.end` terminates the deck (anything after it is ignored);
//! * element cards are selected by their first letter, case-insensitive:
//!   `R` resistor, `C` capacitor, `V`/`I` independent sources (with an
//!   optional `DC` keyword), `E` voltage-controlled voltage source,
//!   `G` voltage-controlled current source, and `M` MOSFET;
//! * values accept the standard engineering suffixes `f p n u m k meg g t`
//!   and ignore trailing unit letters (`10pF`, `5kOhm`).
//!
//! MOSFET cards use the SPICE terminal order **drain gate source** (the bulk
//! terminal is omitted — the device model is source-referenced) followed by a
//! model name (`nmos` / `pmos`, resolved against a [`Technology`]) and
//! mandatory `W=` and `L=` parameters:
//!
//! ```text
//! M1 out in 0 nmos W=88n L=22n
//! ```
//!
//! # Examples
//!
//! ```
//! use nanospice::parser::parse_deck;
//! use nanospice::dc::DcSolver;
//! use sram_device::process::Technology;
//!
//! let deck = parse_deck(
//!     "divider example
//!      V1 vin 0 DC 1.0
//!      R1 vin mid 1k
//!      R2 mid 0 3k
//!      .end",
//!     &Technology::ptm_22nm(),
//! )?;
//! let mid = deck.circuit.find_node("mid").expect("node exists");
//! let op = DcSolver::new(&deck.circuit).solve()?;
//! assert!((op.voltage(mid).volts() - 0.75).abs() < 1e-9);
//! # Ok::<(), nanospice::error::SpiceError>(())
//! ```

use crate::circuit::Circuit;
use crate::elements::Element;
use crate::error::SpiceError;
use sram_device::mosfet::{Mosfet, Polarity};
use sram_device::process::Technology;
use sram_device::units::{Ampere, Farad, Meter, Ohm, Volt};
use std::fmt::Write as _;

/// A parsed SPICE deck: the title line plus the constructed circuit.
#[derive(Debug, Clone)]
pub struct Deck {
    /// The deck's title (first non-blank line).
    pub title: String,
    /// The circuit described by the element cards.
    pub circuit: Circuit,
}

/// Parses a SPICE deck into a [`Circuit`].
///
/// MOSFET model names are resolved against `tech` (`nmos`/`pmos`).
///
/// # Errors
///
/// [`SpiceError::Parse`] with a 1-based line number for malformed cards,
/// unknown element letters, unknown models, bad values or missing `W=`/`L=`;
/// construction errors (duplicate names, non-physical values) are reported
/// the same way.
pub fn parse_deck(text: &str, tech: &Technology) -> Result<Deck, SpiceError> {
    let mut circuit = Circuit::new();
    let mut title: Option<String> = None;

    for card in logical_cards(text) {
        let LogicalCard {
            line,
            text: card_text,
        } = card;
        let stripped = strip_comment(&card_text);
        let trimmed = stripped.trim();
        if trimmed.is_empty() {
            continue;
        }
        if title.is_none() {
            title = Some(trimmed.to_owned());
            continue;
        }
        if let Some(directive) = trimmed.strip_prefix('.') {
            let keyword = directive
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_ascii_lowercase();
            if keyword == "end" {
                break;
            }
            return Err(parse_err(line, format!("unsupported directive .{keyword}")));
        }
        parse_card(&mut circuit, tech, line, trimmed)?;
    }

    Ok(Deck {
        title: title.unwrap_or_default(),
        circuit,
    })
}

/// Serializes a circuit back to SPICE deck text, terminated by `.end`.
///
/// The output round-trips through [`parse_deck`] for every element kind the
/// parser understands. MOSFETs are emitted with their polarity as the model
/// name and explicit `W=`/`L=` in meters, so the deck is self-contained given
/// the same [`Technology`].
///
/// SPICE dispatches on the first letter of an element name, so names that do
/// not already start with their card letter (e.g. a transistor named
/// `PU_L`) are prefixed with it (`MPU_L`); a numeric suffix is appended in
/// the unlikely event that the prefixed name collides with another element.
pub fn write_deck(circuit: &Circuit, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut used: std::collections::HashSet<String> = circuit
        .elements()
        .iter()
        .map(|e| e.name().to_ascii_lowercase())
        .collect();
    let mut card_name = |expected: char, id: &str| -> String {
        if id
            .chars()
            .next()
            .is_some_and(|c| c.eq_ignore_ascii_case(&expected))
        {
            return id.to_owned();
        }
        let mut candidate = format!("{expected}{id}");
        let mut i = 1usize;
        while used.contains(&candidate.to_ascii_lowercase()) {
            candidate = format!("{expected}{id}_{i}");
            i += 1;
        }
        used.insert(candidate.to_ascii_lowercase());
        candidate
    };
    for element in circuit.elements() {
        let name = |n| circuit.node_name(n);
        match element {
            Element::Resistor {
                name: id,
                a,
                b,
                resistance,
            } => {
                let id = card_name('R', id);
                let _ = writeln!(
                    out,
                    "{id} {} {} {:e}",
                    name(*a),
                    name(*b),
                    resistance.ohms()
                );
            }
            Element::Capacitor {
                name: id,
                a,
                b,
                capacitance,
            } => {
                let id = card_name('C', id);
                let _ = writeln!(
                    out,
                    "{id} {} {} {:e}",
                    name(*a),
                    name(*b),
                    capacitance.farads()
                );
            }
            Element::VoltageSource {
                name: id,
                pos,
                neg,
                voltage,
                ..
            } => {
                let id = card_name('V', id);
                let _ = writeln!(
                    out,
                    "{id} {} {} DC {:e}",
                    name(*pos),
                    name(*neg),
                    voltage.volts()
                );
            }
            Element::CurrentSource {
                name: id,
                from,
                to,
                current,
            } => {
                let id = card_name('I', id);
                let _ = writeln!(
                    out,
                    "{id} {} {} DC {:e}",
                    name(*from),
                    name(*to),
                    current.amps()
                );
            }
            Element::Vcvs {
                name: id,
                pos,
                neg,
                cpos,
                cneg,
                gain,
                ..
            } => {
                let id = card_name('E', id);
                let _ = writeln!(
                    out,
                    "{id} {} {} {} {} {:e}",
                    name(*pos),
                    name(*neg),
                    name(*cpos),
                    name(*cneg),
                    gain
                );
            }
            Element::Vccs {
                name: id,
                from,
                to,
                cpos,
                cneg,
                transconductance,
            } => {
                let id = card_name('G', id);
                let _ = writeln!(
                    out,
                    "{id} {} {} {} {} {:e}",
                    name(*from),
                    name(*to),
                    name(*cpos),
                    name(*cneg),
                    transconductance
                );
            }
            Element::Transistor {
                name: id,
                gate,
                drain,
                source,
                device,
            } => {
                let id = card_name('M', id);
                let model = match device.model().polarity {
                    Polarity::Nmos => "nmos",
                    Polarity::Pmos => "pmos",
                };
                let _ = writeln!(
                    out,
                    "{id} {} {} {} {model} W={:e} L={:e}",
                    name(*drain),
                    name(*gate),
                    name(*source),
                    device.width().meters(),
                    device.length().meters()
                );
            }
        }
    }
    out.push_str(".end\n");
    out
}

/// One logical input card after continuation-line folding.
struct LogicalCard {
    /// 1-based line number where the card starts.
    line: usize,
    /// Folded card text.
    text: String,
}

/// Folds `+` continuation lines onto their parent card and drops `*` comment
/// lines, preserving the starting line number of each card.
fn logical_cards(text: &str) -> Vec<LogicalCard> {
    let mut cards: Vec<LogicalCard> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim_start();
        if trimmed.starts_with('*') {
            continue;
        }
        if let Some(cont) = trimmed.strip_prefix('+') {
            if let Some(last) = cards.last_mut() {
                last.text.push(' ');
                last.text.push_str(cont);
                continue;
            }
            // A continuation with nothing to continue: keep it as its own
            // card so the error points at the right line.
        }
        cards.push(LogicalCard {
            line,
            text: raw.to_owned(),
        });
    }
    cards
}

/// Removes a trailing `;` comment.
fn strip_comment(card: &str) -> &str {
    match card.find(';') {
        Some(i) => &card[..i],
        None => card,
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> SpiceError {
    SpiceError::Parse {
        line,
        message: message.into(),
    }
}

/// Lifts a construction error into a parse error with position information.
fn lift(line: usize, result: Result<(), SpiceError>) -> Result<(), SpiceError> {
    result.map_err(|e| parse_err(line, e.to_string()))
}

fn parse_card(
    circuit: &mut Circuit,
    tech: &Technology,
    line: usize,
    card: &str,
) -> Result<(), SpiceError> {
    let tokens: Vec<&str> = card.split_whitespace().collect();
    let head = tokens[0];
    let kind = head
        .chars()
        .next()
        .expect("card is non-empty")
        .to_ascii_uppercase();
    match kind {
        'R' | 'C' => {
            let [_, a, b, value] = expect_tokens::<4>(line, &tokens, "name node node value")?;
            let v = parse_value(value).map_err(|m| parse_err(line, m))?;
            let na = circuit.node(&canonical(a));
            let nb = circuit.node(&canonical(b));
            if kind == 'R' {
                lift(line, circuit.resistor(head, na, nb, Ohm::new(v)))
            } else {
                lift(line, circuit.capacitor(head, na, nb, Farad::new(v)))
            }
        }
        'V' | 'I' => {
            // Optional DC keyword: `V1 a 0 DC 1.0` or `V1 a 0 1.0`.
            let value_tokens: Vec<&str> = if tokens.len() == 5 {
                if !tokens[3].eq_ignore_ascii_case("dc") {
                    return Err(parse_err(
                        line,
                        format!("expected DC keyword, found {:?}", tokens[3]),
                    ));
                }
                vec![tokens[0], tokens[1], tokens[2], tokens[4]]
            } else {
                tokens.clone()
            };
            let [_, pos, neg, value] =
                expect_tokens::<4>(line, &value_tokens, "name node node [DC] value")?;
            let v = parse_value(value).map_err(|m| parse_err(line, m))?;
            let np = circuit.node(&canonical(pos));
            let nn = circuit.node(&canonical(neg));
            if kind == 'V' {
                lift(line, circuit.vsource(head, np, nn, Volt::new(v)))
            } else {
                lift(line, circuit.isource(head, np, nn, Ampere::new(v)))
            }
        }
        'E' | 'G' => {
            let [_, out_p, out_n, ctl_p, ctl_n, value] =
                expect_tokens::<6>(line, &tokens, "name node node cnode cnode value")?;
            let v = parse_value(value).map_err(|m| parse_err(line, m))?;
            let op = circuit.node(&canonical(out_p));
            let on = circuit.node(&canonical(out_n));
            let cp = circuit.node(&canonical(ctl_p));
            let cn = circuit.node(&canonical(ctl_n));
            if kind == 'E' {
                lift(line, circuit.vcvs(head, op, on, cp, cn, v))
            } else {
                lift(line, circuit.vccs(head, op, on, cp, cn, v))
            }
        }
        'M' => parse_mosfet(circuit, tech, line, head, &tokens),
        other => Err(parse_err(
            line,
            format!("unknown element letter {other:?} (supported: R C V I E G M)"),
        )),
    }
}

fn parse_mosfet(
    circuit: &mut Circuit,
    tech: &Technology,
    line: usize,
    head: &str,
    tokens: &[&str],
) -> Result<(), SpiceError> {
    // M<name> drain gate source model W=.. L=..
    if tokens.len() < 5 {
        return Err(parse_err(
            line,
            "MOSFET card needs: name drain gate source model W=value L=value",
        ));
    }
    let (drain, gate, source, model_name) = (tokens[1], tokens[2], tokens[3], tokens[4]);
    let model = if model_name.eq_ignore_ascii_case("nmos") {
        tech.model(Polarity::Nmos).clone()
    } else if model_name.eq_ignore_ascii_case("pmos") {
        tech.model(Polarity::Pmos).clone()
    } else {
        return Err(parse_err(
            line,
            format!("unknown MOSFET model {model_name:?} (expected nmos or pmos)"),
        ));
    };

    let mut width: Option<f64> = None;
    let mut length: Option<f64> = None;
    for param in &tokens[5..] {
        let Some((key, value)) = param.split_once('=') else {
            return Err(parse_err(
                line,
                format!("expected KEY=value MOSFET parameter, found {param:?}"),
            ));
        };
        let v = parse_value(value).map_err(|m| parse_err(line, m))?;
        match key.to_ascii_lowercase().as_str() {
            "w" => width = Some(v),
            "l" => length = Some(v),
            other => {
                return Err(parse_err(
                    line,
                    format!("unknown MOSFET parameter {other:?} (supported: W, L)"),
                ))
            }
        }
    }
    let (Some(w), Some(l)) = (width, length) else {
        return Err(parse_err(line, "MOSFET card requires both W= and L="));
    };

    let device = Mosfet::new(model, Meter::new(w), Meter::new(l))
        .map_err(|e| parse_err(line, e.to_string()))?;
    let ng = circuit.node(&canonical(gate));
    let nd = circuit.node(&canonical(drain));
    let ns = circuit.node(&canonical(source));
    lift(line, circuit.transistor(head, ng, nd, ns, device))
}

/// Normalizes a node token: names are case-insensitive in SPICE decks.
fn canonical(token: &str) -> String {
    token.to_ascii_lowercase()
}

fn expect_tokens<'a, const N: usize>(
    line: usize,
    tokens: &[&'a str],
    shape: &str,
) -> Result<[&'a str; N], SpiceError> {
    if tokens.len() != N {
        return Err(parse_err(
            line,
            format!("expected {N} fields ({shape}), found {}", tokens.len()),
        ));
    }
    Ok(std::array::from_fn(|i| tokens[i]))
}

/// Parses a SPICE numeric value with engineering suffixes.
///
/// Accepted scale factors (case-insensitive): `t g meg k m u n p f`. Any
/// trailing alphabetic unit (`F`, `Ohm`, `V`...) after the scale factor is
/// ignored, as in classic SPICE.
///
/// # Errors
///
/// Returns a human-readable message when the token has no numeric prefix or
/// contains non-alphabetic garbage after the number.
pub fn parse_value(token: &str) -> Result<f64, String> {
    let lower = token.trim().to_ascii_lowercase();
    if lower.is_empty() {
        return Err("empty value".to_owned());
    }
    // Longest prefix that parses as a float (handles 1e-3, -4.7, .5 ...).
    let bytes = lower.as_bytes();
    let mut split = 0;
    let mut best: Option<f64> = None;
    for end in 1..=bytes.len() {
        if let Ok(v) = lower[..end].parse::<f64>() {
            best = Some(v);
            split = end;
        }
    }
    let Some(mantissa) = best else {
        return Err(format!("value {token:?} has no numeric prefix"));
    };
    let suffix = &lower[split..];
    if !suffix.chars().all(|c| c.is_ascii_alphabetic()) {
        return Err(format!("value {token:?} has a malformed suffix {suffix:?}"));
    }
    let scale = if suffix.starts_with("meg") {
        1e6
    } else {
        match suffix.chars().next() {
            None => 1.0,
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            // Unknown letters are unit annotations ("10V", "3A"): scale 1.
            Some(_) => 1.0,
        }
    };
    Ok(mantissa * scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::NodeId;
    use crate::dc::DcSolver;

    fn tech() -> Technology {
        Technology::ptm_22nm()
    }

    fn assert_close(actual: f64, expected: f64) {
        let tol = expected.abs() * 1e-12;
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected:e}, parsed {actual:e}"
        );
    }

    #[test]
    fn value_suffixes() {
        assert_close(parse_value("100").unwrap(), 100.0);
        assert_close(parse_value("1k").unwrap(), 1e3);
        assert_close(parse_value("2.2K").unwrap(), 2.2e3);
        assert_close(parse_value("1meg").unwrap(), 1e6);
        assert_close(parse_value("1MEG").unwrap(), 1e6);
        assert_close(parse_value("5m").unwrap(), 5e-3);
        assert_close(parse_value("10u").unwrap(), 10e-6);
        assert_close(parse_value("3n").unwrap(), 3e-9);
        assert_close(parse_value("10p").unwrap(), 10e-12);
        assert_close(parse_value("2f").unwrap(), 2e-15);
        assert_close(parse_value("1g").unwrap(), 1e9);
        assert_close(parse_value("1t").unwrap(), 1e12);
    }

    #[test]
    fn value_trailing_units_ignored() {
        assert_close(parse_value("10pF").unwrap(), 10e-12);
        assert_close(parse_value("5kOhm").unwrap(), 5e3);
        assert_close(parse_value("10V").unwrap(), 10.0);
        assert_close(parse_value("1megohm").unwrap(), 1e6);
    }

    #[test]
    fn value_scientific_and_signed() {
        assert_eq!(parse_value("1e-3").unwrap(), 1e-3);
        assert_eq!(parse_value("-4.7").unwrap(), -4.7);
        assert_eq!(parse_value(".5").unwrap(), 0.5);
        assert_eq!(parse_value("1.5e3k").unwrap(), 1.5e6);
    }

    #[test]
    fn value_garbage_rejected() {
        assert!(parse_value("").is_err());
        assert!(parse_value("abc").is_err());
        assert!(parse_value("1k2").is_err());
        assert!(parse_value("--3").is_err());
    }

    #[test]
    fn divider_deck_parses_and_solves() {
        let deck = parse_deck(
            "voltage divider
             * a comment line
             V1 vin 0 DC 1.0
             R1 vin mid 1k    ; trailing comment
             R2 mid 0 3k
             .end",
            &tech(),
        )
        .unwrap();
        assert_eq!(deck.title, "voltage divider");
        let mid = deck.circuit.find_node("mid").unwrap();
        let op = DcSolver::new(&deck.circuit).solve().unwrap();
        assert!((op.voltage(mid).volts() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn continuation_lines_fold() {
        let deck = parse_deck(
            "continuation test
             V1 a 0
             + DC 2.0
             R1 a 0 1k
             .end",
            &tech(),
        )
        .unwrap();
        let a = deck.circuit.find_node("a").unwrap();
        let op = DcSolver::new(&deck.circuit).solve().unwrap();
        assert!((op.voltage(a).volts() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn node_names_case_insensitive() {
        let deck = parse_deck(
            "case test
             V1 VIN 0 1.0
             R1 vin 0 1k
             .end",
            &tech(),
        )
        .unwrap();
        // Both spellings refer to one node: only V1's node plus ground exist.
        assert_eq!(deck.circuit.node_count(), 2);
    }

    #[test]
    fn mosfet_inverter_deck() {
        let deck = parse_deck(
            "resistor-load inverter
             VDD vdd 0 0.95
             VIN in 0 0.95
             RL vdd out 50k
             M1 out in 0 nmos W=88n L=22n
             .end",
            &tech(),
        )
        .unwrap();
        let out = deck.circuit.find_node("out").unwrap();
        let op = DcSolver::new(&deck.circuit).solve().unwrap();
        assert!(op.voltage(out).volts() < 0.2, "on transistor pulls low");
    }

    #[test]
    fn controlled_source_cards() {
        let deck = parse_deck(
            "controlled sources
             V1 c 0 1.0
             E1 e 0 c 0 3.0
             RE e 0 1k
             G1 0 g c 0 1m
             RG g 0 2k
             .end",
            &tech(),
        )
        .unwrap();
        let op = DcSolver::new(&deck.circuit).solve().unwrap();
        let e = deck.circuit.find_node("e").unwrap();
        let g = deck.circuit.find_node("g").unwrap();
        assert!((op.voltage(e).volts() - 3.0).abs() < 1e-6);
        assert!((op.voltage(g).volts() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_deck(
            "title
             V1 a 0 1.0
             Q1 a 0 bogus
             .end",
            &tech(),
        )
        .unwrap_err();
        match err {
            SpiceError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains('Q'), "message was {message:?}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn bad_cards_rejected() {
        let cases = [
            "t\nR1 a 0\n.end",                        // too few fields
            "t\nR1 a 0 zzz\n.end",                    // bad value
            "t\nV1 a 0 AC 1.0\n.end",                 // not DC
            "t\nM1 d g 0 weird W=88n L=22n\n.end",    // unknown model
            "t\nM1 d g 0 nmos W=88n\n.end",           // missing L
            "t\nM1 d g 0 nmos X=1 W=88n L=22n\n.end", // unknown param
            "t\nM1 d g 0 nmos W 88n L=22n\n.end",     // malformed param
            "t\n.option reltol=1e-3\n.end",           // unsupported directive
            "t\nR1 a 0 1k\nR1 a 0 2k\n.end",          // duplicate name
            "t\nR1 a 0 0\n.end",                      // non-physical value
        ];
        for deck in cases {
            let err = parse_deck(deck, &tech()).unwrap_err();
            assert!(
                matches!(err, SpiceError::Parse { .. }),
                "deck {deck:?} produced {err}"
            );
        }
    }

    #[test]
    fn cards_after_end_ignored() {
        let deck = parse_deck("t\nR1 a 0 1k\n.end\nthis is not a card", &tech()).unwrap();
        assert_eq!(deck.circuit.elements().len(), 1);
    }

    #[test]
    fn writer_round_trips() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.vsource("V1", a, NodeId::GROUND, Volt::new(0.95))
            .unwrap();
        ckt.resistor("R1", a, b, Ohm::new(12.5e3)).unwrap();
        ckt.capacitor("C1", b, NodeId::GROUND, Farad::from_femtofarads(7.0))
            .unwrap();
        ckt.isource("I1", NodeId::GROUND, b, Ampere::from_microamps(2.0))
            .unwrap();
        ckt.vcvs("E1", c, NodeId::GROUND, b, NodeId::GROUND, 2.5)
            .unwrap();
        ckt.vccs("G1", NodeId::GROUND, c, a, NodeId::GROUND, 3e-4)
            .unwrap();
        let t = tech();
        let m = Mosfet::new(
            t.nmos.clone(),
            Meter::from_nanometers(88.0),
            Meter::from_nanometers(22.0),
        )
        .unwrap();
        ckt.transistor("M1", b, c, NodeId::GROUND, m).unwrap();

        let text = write_deck(&ckt, "round trip");
        let deck = parse_deck(&text, &t).unwrap();
        assert_eq!(deck.title, "round trip");
        assert_eq!(deck.circuit.elements().len(), ckt.elements().len());

        // Both circuits must produce the same DC solution.
        let op1 = DcSolver::new(&ckt).solve().unwrap();
        let op2 = DcSolver::new(&deck.circuit).solve().unwrap();
        for node in ["a", "b", "c"] {
            let n1 = ckt.find_node(node).unwrap();
            let n2 = deck.circuit.find_node(node).unwrap();
            assert!(
                (op1.voltage(n1).volts() - op2.voltage(n2).volts()).abs() < 1e-9,
                "node {node} diverged after round trip"
            );
        }
    }

    #[test]
    fn writer_prefixes_noncanonical_names() {
        // Internal netlists name devices by function ("PU_L"); the deck
        // format dispatches on the first letter, so the writer must prefix.
        let t = tech();
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let m = Mosfet::new(
            t.nmos.clone(),
            Meter::from_nanometers(88.0),
            Meter::from_nanometers(22.0),
        )
        .unwrap();
        ckt.transistor("PU_L", a, a, NodeId::GROUND, m).unwrap();
        ckt.resistor("load", a, NodeId::GROUND, Ohm::new(1e4))
            .unwrap();
        ckt.vsource("supply", a, NodeId::GROUND, Volt::new(0.5))
            .unwrap();
        let text = write_deck(&ckt, "prefix test");
        assert!(text.contains("MPU_L "), "{text}");
        assert!(text.contains("Rload "), "{text}");
        assert!(text.contains("Vsupply "), "{text}");
        // And the prefixed deck parses cleanly.
        assert!(parse_deck(&text, &t).is_ok());
    }

    #[test]
    fn empty_deck_is_title_only() {
        let deck = parse_deck("just a title", &tech()).unwrap();
        assert_eq!(deck.title, "just a title");
        assert!(deck.circuit.elements().is_empty());
    }
}
