//! Transient analysis with fixed-step backward Euler.
//!
//! Good enough for the RC-scale questions the bitcell characterization asks
//! ("how long until the bitline drops 100 mV?"): backward Euler is
//! unconditionally stable, and SRAM read/write waveforms are monotone enough
//! that first-order accuracy with a small fixed step is fine. Capacitors are
//! folded in as companion models inside the shared Newton stamping routine.

use crate::circuit::{Circuit, NodeId};
use crate::dc::{newton_solve, stamp_all, DcSolution, NewtonOptions, TransientStamp};
use crate::error::SpiceError;
use crate::linear::DenseMatrix;
use sram_device::units::{Second, Volt};

/// Options for a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// Fixed integration step.
    pub dt: Second,
    /// Stop time (inclusive of the final step).
    pub t_stop: Second,
    /// Newton options used at each time point.
    pub newton: NewtonOptions,
}

impl TransientOptions {
    /// Creates options with default Newton settings.
    pub fn new(dt: Second, t_stop: Second) -> Self {
        Self {
            dt,
            t_stop,
            newton: NewtonOptions::default(),
        }
    }
}

/// A recorded transient waveform: time points and per-node voltages.
#[derive(Debug, Clone)]
pub struct Waveform {
    times: Vec<f64>,
    /// Outer index: time point; inner: non-ground node voltages.
    node_voltages: Vec<Vec<f64>>,
}

impl Waveform {
    /// Number of stored time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if no time points were stored.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Time of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn time(&self, i: usize) -> Second {
        Second::new(self.times[i])
    }

    /// Voltage of `node` at sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the node is foreign.
    pub fn voltage(&self, node: NodeId, i: usize) -> Volt {
        if node.is_ground() {
            return Volt::new(0.0);
        }
        Volt::new(self.node_voltages[i][node.index() - 1])
    }

    /// First time at which `node` crosses `threshold` in the given direction
    /// (`falling = true` means crossing from above to below). Linear
    /// interpolation between samples. `None` if it never crosses.
    pub fn crossing_time(&self, node: NodeId, threshold: Volt, falling: bool) -> Option<Second> {
        let th = threshold.volts();
        for i in 1..self.len() {
            let v0 = self.voltage(node, i - 1).volts();
            let v1 = self.voltage(node, i).volts();
            let crossed = if falling {
                v0 > th && v1 <= th
            } else {
                v0 < th && v1 >= th
            };
            if crossed {
                let t0 = self.times[i - 1];
                let t1 = self.times[i];
                let frac = if (v1 - v0).abs() < 1e-30 {
                    0.0
                } else {
                    (th - v0) / (v1 - v0)
                };
                return Some(Second::new(t0 + frac * (t1 - t0)));
            }
        }
        None
    }

    /// Final voltage of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the waveform is empty.
    pub fn final_voltage(&self, node: NodeId) -> Volt {
        self.voltage(node, self.len() - 1)
    }
}

/// Runs a backward-Euler transient from the given initial condition.
///
/// `initial` must be a DC solution of the same circuit (typically the
/// pre-access operating point); source value changes made to `circuit`
/// *after* obtaining `initial` are what create the transient stimulus — the
/// classic "flip the wordline source, then integrate" recipe.
///
/// # Errors
///
/// [`SpiceError::InvalidTimestep`] for a non-positive step or horizon, plus
/// any Newton failure at a time point.
pub fn transient(
    circuit: &Circuit,
    initial: &DcSolution,
    options: &TransientOptions,
) -> Result<Waveform, SpiceError> {
    let dt = options.dt.seconds();
    let t_stop = options.t_stop.seconds();
    if dt <= 0.0 || t_stop <= 0.0 || !dt.is_finite() || !t_stop.is_finite() {
        return Err(SpiceError::InvalidTimestep);
    }
    let n_nodes = circuit.node_count() - 1;
    let n = circuit.unknown_count();
    let steps = (t_stop / dt).ceil() as usize;

    let mut x = initial.clone().into_unknowns();
    let mut times = Vec::with_capacity(steps + 1);
    let mut node_voltages = Vec::with_capacity(steps + 1);
    times.push(0.0);
    node_voltages.push(x[..n_nodes].to_vec());

    for step in 1..=steps {
        let t = step as f64 * dt;
        let prev_nodes: Vec<f64> = x[..n_nodes].to_vec();
        // Newton at this time point with capacitor companion models.
        let mut iterate = x.clone();
        let mut converged = false;
        for _ in 0..options.newton.max_iterations {
            let mut jac = DenseMatrix::zeros(n);
            let mut residual = vec![0.0; n];
            let tr = TransientStamp {
                inv_dt: 1.0 / dt,
                previous: &prev_nodes,
            };
            stamp_all(
                circuit,
                &iterate,
                1.0,
                options.newton.gmin,
                &mut jac,
                &mut residual,
                Some(&tr),
            );
            let rhs: Vec<f64> = residual.iter().map(|r| -r).collect();
            let dx = jac.solve(&rhs)?;
            let max_dv = dx[..n_nodes].iter().fold(0.0f64, |m, d| m.max(d.abs()));
            let scale = if max_dv > options.newton.max_step {
                options.newton.max_step / max_dv
            } else {
                1.0
            };
            for (xi, di) in iterate.iter_mut().zip(dx.iter()) {
                *xi += scale * di;
            }
            if max_dv * scale < options.newton.vntol {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(SpiceError::NoConvergence {
                iterations: options.newton.max_iterations,
                residual: f64::NAN,
            });
        }
        x = iterate;
        times.push(t);
        node_voltages.push(x[..n_nodes].to_vec());
    }

    Ok(Waveform {
        times,
        node_voltages,
    })
}

/// Convenience: solve the DC operating point of `circuit` as the initial
/// condition, then run a transient after applying `stimulus` (source edits).
///
/// # Errors
///
/// Propagates DC and transient solver errors.
pub fn transient_with_stimulus(
    circuit: &mut Circuit,
    stimulus: impl FnOnce(&mut Circuit) -> Result<(), SpiceError>,
    options: &TransientOptions,
) -> Result<Waveform, SpiceError> {
    let initial = newton_solve(
        circuit,
        &vec![0.0; circuit.unknown_count()],
        &options.newton,
        1.0,
        None,
    )
    .or_else(|_| crate::dc::DcSolver::new(circuit).solve())?;
    stimulus(circuit)?;
    transient(circuit, &initial, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::DcSolver;
    use sram_device::units::{Farad, Ohm};

    /// RC discharge: v(t) = V0 e^(-t/RC); BE is first-order accurate, so
    /// compare with a generous tolerance.
    #[test]
    fn rc_discharge_matches_analytic() {
        let r = 10e3;
        let c = 10e-15;
        let tau = r * c; // 100 ps
                         // Charge node b to 1 V with a current source, then remove the source
                         // and let the capacitor discharge through R.
        let mut ckt = Circuit::new();
        let b = ckt.node("b");
        ckt.resistor("R1", b, NodeId::GROUND, Ohm::new(r)).unwrap();
        ckt.capacitor("C1", b, NodeId::GROUND, Farad::new(c))
            .unwrap();
        ckt.isource(
            "I1",
            NodeId::GROUND,
            b,
            sram_device::units::Ampere::new(1.0 / r),
        )
        .unwrap();
        let op = DcSolver::new(&ckt).solve().unwrap();
        assert!((op.voltage(b).volts() - 1.0).abs() < 1e-6);
        let mut ckt2 = Circuit::new();
        let b2 = ckt2.node("b");
        ckt2.resistor("R1", b2, NodeId::GROUND, Ohm::new(r))
            .unwrap();
        ckt2.capacitor("C1", b2, NodeId::GROUND, Farad::new(c))
            .unwrap();
        let options = TransientOptions::new(Second::new(tau / 200.0), Second::new(3.0 * tau));
        let wave = transient(&ckt2, &op, &options).unwrap();
        // At t = tau the voltage should be ~ 1/e.
        let idx = (wave.len() as f64 / 3.0) as usize;
        let t = wave.time(idx).seconds();
        let v = wave.voltage(b2, idx).volts();
        let expected = (-t / tau).exp();
        assert!(
            (v - expected).abs() < 0.02,
            "BE discharge at t={t}: {v} vs {expected}"
        );
    }

    #[test]
    fn crossing_time_interpolates() {
        let r = 1e3;
        let c = 1e-12;
        let tau = r * c;
        let mut ckt = Circuit::new();
        let b = ckt.node("b");
        ckt.resistor("R1", b, NodeId::GROUND, Ohm::new(r)).unwrap();
        ckt.capacitor("C1", b, NodeId::GROUND, Farad::new(c))
            .unwrap();
        ckt.isource(
            "I1",
            NodeId::GROUND,
            b,
            sram_device::units::Ampere::new(1.0 / r),
        )
        .unwrap();
        let op = DcSolver::new(&ckt).solve().unwrap();
        let mut discharge = Circuit::new();
        let b2 = discharge.node("b");
        discharge
            .resistor("R1", b2, NodeId::GROUND, Ohm::new(r))
            .unwrap();
        discharge
            .capacitor("C1", b2, NodeId::GROUND, Farad::new(c))
            .unwrap();
        let options = TransientOptions::new(Second::new(tau / 500.0), Second::new(2.0 * tau));
        let wave = transient(&discharge, &op, &options).unwrap();
        // v crosses 0.5 at t = tau ln 2.
        let t_half = wave
            .crossing_time(b2, Volt::new(0.5), true)
            .expect("must cross");
        let expected = tau * std::f64::consts::LN_2;
        assert!(
            (t_half.seconds() - expected).abs() < 0.02 * tau,
            "t_half {} vs {}",
            t_half.seconds(),
            expected
        );
        // Never crosses upward through 2 V.
        assert!(wave.crossing_time(b2, Volt::new(2.0), false).is_none());
    }

    #[test]
    fn invalid_timestep_is_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, NodeId::GROUND, Ohm::new(1e3))
            .unwrap();
        let op = DcSolver::new(&ckt).solve().unwrap();
        let bad = TransientOptions::new(Second::new(0.0), Second::new(1e-9));
        assert_eq!(
            transient(&ckt, &op, &bad).unwrap_err(),
            SpiceError::InvalidTimestep
        );
    }

    #[test]
    fn waveform_accessors() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, NodeId::GROUND, Ohm::new(1e3))
            .unwrap();
        ckt.capacitor("C1", a, NodeId::GROUND, Farad::from_femtofarads(1.0))
            .unwrap();
        let op = DcSolver::new(&ckt).solve().unwrap();
        let options = TransientOptions::new(
            Second::from_picoseconds(1.0),
            Second::from_picoseconds(10.0),
        );
        let wave = transient(&ckt, &op, &options).unwrap();
        assert_eq!(wave.len(), 11); // t=0 plus 10 steps
        assert!(!wave.is_empty());
        assert!(wave.final_voltage(a).volts().abs() < 1e-6);
        assert_eq!(wave.voltage(NodeId::GROUND, 0), Volt::new(0.0));
    }
}
