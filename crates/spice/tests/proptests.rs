//! Property-based tests for the circuit solver: the solver must agree with
//! closed-form circuit theory for randomly generated linear networks.

use nanospice::prelude::*;
use proptest::prelude::*;
use sram_device::units::{Ampere, Ohm, Volt};

proptest! {
    /// Voltage divider: solved mid voltage equals the analytic ratio.
    #[test]
    fn divider_matches_theory(v in 0.1f64..2.0, r1 in 100.0f64..1e6, r2 in 100.0f64..1e6) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let mid = ckt.node("mid");
        ckt.vsource("V1", vin, NodeId::GROUND, Volt::new(v)).unwrap();
        ckt.resistor("R1", vin, mid, Ohm::new(r1)).unwrap();
        ckt.resistor("R2", mid, NodeId::GROUND, Ohm::new(r2)).unwrap();
        let op = DcSolver::new(&ckt).solve().unwrap();
        let expected = v * r2 / (r1 + r2);
        prop_assert!((op.voltage(mid).volts() - expected).abs() < 1e-6 * expected.max(1.0));
    }

    /// A resistor ladder must satisfy KCL: source current equals the current
    /// through the first rung computed from the node voltages.
    #[test]
    fn ladder_kcl(v in 0.2f64..1.5, stages in 2usize..8, r in 1e3f64..1e5) {
        let mut ckt = Circuit::new();
        let top = ckt.node("n0");
        ckt.vsource("V1", top, NodeId::GROUND, Volt::new(v)).unwrap();
        let mut prev = top;
        for s in 1..=stages {
            let node = ckt.node(&format!("n{s}"));
            ckt.resistor(&format!("Rs{s}"), prev, node, Ohm::new(r)).unwrap();
            ckt.resistor(&format!("Rp{s}"), node, NodeId::GROUND, Ohm::new(2.0 * r)).unwrap();
            prev = node;
        }
        let op = DcSolver::new(&ckt).solve().unwrap();
        let n1 = ckt.find_node("n1").unwrap();
        let i_first = (op.voltage(top).volts() - op.voltage(n1).volts()) / r;
        let i_src = -op.vsource_current(&ckt, "V1").unwrap().amps();
        // The solver injects gmin (1e-12 S) from every node to ground, so the
        // source also feeds ~stages * gmin * v of bookkeeping current.
        let gmin_budget = 1e-11 * (stages as f64) * v.max(1.0);
        prop_assert!((i_first - i_src).abs() < 1e-9 * i_src.abs() + gmin_budget,
            "KCL at source: rung {i_first} vs source {i_src}");
    }

    /// Current source into parallel resistors: Ohm's law on the combined G.
    #[test]
    fn parallel_resistors(i_ua in 0.1f64..100.0, r1 in 1e3f64..1e6, r2 in 1e3f64..1e6) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.isource("I1", NodeId::GROUND, a, Ampere::from_microamps(i_ua)).unwrap();
        ckt.resistor("R1", a, NodeId::GROUND, Ohm::new(r1)).unwrap();
        ckt.resistor("R2", a, NodeId::GROUND, Ohm::new(r2)).unwrap();
        let op = DcSolver::new(&ckt).solve().unwrap();
        let expected = i_ua * 1e-6 / (1.0 / r1 + 1.0 / r2);
        prop_assert!((op.voltage(a).volts() - expected).abs() < 1e-6 * expected.max(1e-6));
    }

    /// Linearity: doubling every source doubles every node voltage.
    #[test]
    fn linear_superposition(v in 0.1f64..1.0, i_ua in 0.1f64..50.0) {
        let build = |vs: f64, is: f64| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.vsource("V1", a, NodeId::GROUND, Volt::new(vs)).unwrap();
            ckt.resistor("R1", a, b, Ohm::new(10e3)).unwrap();
            ckt.resistor("R2", b, NodeId::GROUND, Ohm::new(22e3)).unwrap();
            ckt.isource("I1", NodeId::GROUND, b, Ampere::from_microamps(is)).unwrap();
            let op = DcSolver::new(&ckt).solve().unwrap();
            op.voltage(b).volts()
        };
        let v1 = build(v, i_ua);
        let v2 = build(2.0 * v, 2.0 * i_ua);
        prop_assert!((v2 - 2.0 * v1).abs() < 1e-6 * v1.abs().max(1e-6));
    }
}

proptest! {
    /// Any plainly formatted float must parse back to itself.
    #[test]
    fn parse_value_roundtrips_plain_floats(v in -1e9f64..1e9) {
        let parsed = nanospice::parser::parse_value(&format!("{v:e}")).unwrap();
        prop_assert!((parsed - v).abs() <= v.abs() * 1e-12);
    }

    /// Engineering-suffix formatting must agree with the plain scientific form.
    #[test]
    fn parse_value_suffixes_scale(mantissa in 0.001f64..999.0, suffix in 0usize..9) {
        let (text, scale) = [
            ("f", 1e-15), ("p", 1e-12), ("n", 1e-9), ("u", 1e-6), ("m", 1e-3),
            ("k", 1e3), ("meg", 1e6), ("g", 1e9), ("t", 1e12),
        ][suffix];
        let parsed = nanospice::parser::parse_value(&format!("{mantissa}{text}")).unwrap();
        let expected = mantissa * scale;
        prop_assert!((parsed - expected).abs() <= expected.abs() * 1e-12);
    }

    /// A randomly generated linear network must survive a deck round trip:
    /// write → parse → identical DC solution.
    #[test]
    fn deck_round_trip_preserves_solution(
        v in 0.2f64..1.5,
        r1 in 1e3f64..1e6,
        r2 in 1e3f64..1e6,
        gain in 0.1f64..10.0,
        gm_us in 1.0f64..1000.0,
    ) {
        let tech = sram_device::process::Technology::ptm_22nm();
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let mid = ckt.node("mid");
        let amp = ckt.node("amp");
        let cur = ckt.node("cur");
        ckt.vsource("V1", vin, NodeId::GROUND, Volt::new(v)).unwrap();
        ckt.resistor("R1", vin, mid, Ohm::new(r1)).unwrap();
        ckt.resistor("R2", mid, NodeId::GROUND, Ohm::new(r2)).unwrap();
        ckt.vcvs("E1", amp, NodeId::GROUND, mid, NodeId::GROUND, gain).unwrap();
        ckt.resistor("RA", amp, NodeId::GROUND, Ohm::new(10e3)).unwrap();
        ckt.vccs("G1", NodeId::GROUND, cur, mid, NodeId::GROUND, gm_us * 1e-6).unwrap();
        ckt.resistor("RC", cur, NodeId::GROUND, Ohm::new(5e3)).unwrap();

        let text = nanospice::parser::write_deck(&ckt, "roundtrip property");
        let deck = nanospice::parser::parse_deck(&text, &tech).unwrap();
        let op1 = DcSolver::new(&ckt).solve().unwrap();
        let op2 = DcSolver::new(&deck.circuit).solve().unwrap();
        for node in ["vin", "mid", "amp", "cur"] {
            let v1 = op1.voltage(ckt.find_node(node).unwrap()).volts();
            let v2 = op2.voltage(deck.circuit.find_node(node).unwrap()).volts();
            prop_assert!((v1 - v2).abs() < 1e-9 + 1e-9 * v1.abs(), "node {} diverged", node);
        }
    }

    /// VCVS gain sweep: output scales linearly with the gain parameter.
    #[test]
    fn vcvs_output_scales_with_gain(gain in 0.0f64..20.0, vctl in 0.05f64..1.0) {
        let mut ckt = Circuit::new();
        let c = ckt.node("c");
        let o = ckt.node("o");
        ckt.vsource("V1", c, NodeId::GROUND, Volt::new(vctl)).unwrap();
        ckt.vcvs("E1", o, NodeId::GROUND, c, NodeId::GROUND, gain).unwrap();
        ckt.resistor("RL", o, NodeId::GROUND, Ohm::new(1e4)).unwrap();
        let op = DcSolver::new(&ckt).solve().unwrap();
        prop_assert!((op.voltage(o).volts() - gain * vctl).abs() < 1e-7 * (gain * vctl).max(1.0));
    }
}

/// The DC sweep must return one solution per requested point, in order.
#[test]
fn sweep_point_count() {
    let mut ckt = Circuit::new();
    let vin = ckt.node("vin");
    ckt.vsource("V1", vin, NodeId::GROUND, Volt::new(0.0))
        .unwrap();
    ckt.resistor("R1", vin, NodeId::GROUND, Ohm::new(1e4))
        .unwrap();
    let pts: Vec<Volt> = (0..37).map(|i| Volt::new(i as f64 * 0.025)).collect();
    let sols = dc_sweep(&mut ckt, "V1", &pts, &NewtonOptions::default(), None).unwrap();
    assert_eq!(sols.len(), 37);
    for (s, p) in sols.iter().zip(&pts) {
        assert!((s.voltage(vin).volts() - p.volts()).abs() < 1e-9);
    }
}
