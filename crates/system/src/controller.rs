//! System controller: sequences NPE computations against the synaptic memory.
//!
//! This is the digital ASIC of paper Fig. 2 in behavioral form: the
//! controller walks the network layer by layer, streams each neuron's weight
//! words out of the (possibly faulty, voltage-scaled) synaptic memory, feeds
//! the NPE MAC, and latches the activations for the next layer. Every weight
//! read goes through the behavioral memory, so per-access read faults land
//! exactly where the hardware would see them.

use crate::layout;
use crate::npe::{encode_activation, Npe};
use neural::quant::QuantizedMlp;
use sram_array::behavioral::SynapticMemory;

/// Shape of one layer as seen by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LayerShape {
    inputs: usize,
    outputs: usize,
}

/// The neuromorphic system: NPE bank + controller + synaptic memory.
#[derive(Debug)]
pub struct NeuromorphicSystem {
    npe: Npe,
    memory: SynapticMemory,
    shapes: Vec<LayerShape>,
}

impl NeuromorphicSystem {
    /// Builds the system by loading a quantized network into the given
    /// memory (through its faulty write path).
    ///
    /// # Panics
    ///
    /// Panics if the memory's bank layout does not match the network
    /// (`layout::bank_words`).
    pub fn new(network: &QuantizedMlp, mut memory: SynapticMemory, npe: Npe) -> Self {
        let words = layout::bank_words(network);
        let map_words: Vec<usize> = memory.map().banks().iter().map(|b| b.words).collect();
        assert_eq!(
            words, map_words,
            "memory bank layout does not match the network"
        );
        memory.load(&layout::flatten(network));
        let shapes = network
            .layers
            .iter()
            .map(|l| LayerShape {
                inputs: l.inputs,
                outputs: l.outputs,
            })
            .collect();
        Self {
            npe,
            memory,
            shapes,
        }
    }

    /// Access to the underlying memory (e.g. for energy accounting).
    pub fn memory(&self) -> &SynapticMemory {
        &self.memory
    }

    /// Classifies one input sample (features in `[0, 1]`); returns the
    /// predicted class index.
    ///
    /// # Panics
    ///
    /// Panics if the feature count does not match the input layer.
    pub fn classify(&mut self, features: &[f32]) -> usize {
        let outputs = self.infer(features);
        outputs
            .iter()
            .enumerate()
            .max_by_key(|(_, &code)| code)
            .map(|(i, _)| i)
            .expect("non-empty output layer")
    }

    /// Runs a full forward pass; returns the output activation codes.
    ///
    /// # Panics
    ///
    /// Panics if the feature count does not match the input layer.
    pub fn infer(&mut self, features: &[f32]) -> Vec<u8> {
        assert_eq!(
            features.len(),
            self.shapes[0].inputs,
            "input width mismatch"
        );
        let mut activations: Vec<u8> = features.iter().map(|&f| encode_activation(f)).collect();
        let mut bank_base = 0usize;

        let shapes = self.shapes.clone();
        let mut weight_buf: Vec<u8> = Vec::new();
        for shape in &shapes {
            let mut next = Vec::with_capacity(shape.outputs);
            for neuron in 0..shape.outputs {
                weight_buf.clear();
                let row_start = bank_base + layout::weight_offset(shape.inputs, neuron, 0);
                for k in 0..shape.inputs {
                    weight_buf.push(self.memory.read(row_start + k));
                }
                let bias = self
                    .memory
                    .read(bank_base + layout::bias_offset(shape.inputs, shape.outputs, neuron));
                next.push(self.npe.neuron(&weight_buf, bias, &activations));
            }
            bank_base += shape.inputs * shape.outputs + shape.outputs;
            activations = next;
        }
        activations
    }

    /// Classification accuracy over a dataset, running every sample through
    /// the full memory-faulting datapath.
    ///
    /// # Panics
    ///
    /// Panics on feature-width mismatch.
    pub fn accuracy(&mut self, data: &neural::dataset::Dataset) -> f64 {
        assert!(!data.is_empty(), "empty dataset");
        let mut correct = 0usize;
        for i in 0..data.len() {
            if self.classify(data.image(i)) == data.label(i) {
                correct += 1;
            }
        }
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_inject::model::{BitErrorRates, WordFailureModel};
    use fault_inject::protection::ProtectionPolicy;
    use neural::dataset::synth;
    use neural::eval::accuracy;
    use neural::network::Mlp;
    use neural::quant::{Encoding, QuantizedMlp};
    use neural::train::{train, TrainOptions};
    use sram_array::organization::{SubArrayDims, SynapticMemoryMap};

    fn trained_small_net() -> (QuantizedMlp, neural::dataset::Dataset) {
        let data = synth::generate_default(400, 21);
        let (train_set, test_set) = data.split(0.75, 3);
        let mut mlp = Mlp::new(&[784, 24, 10], 5);
        train(
            &mut mlp,
            &train_set,
            &TrainOptions {
                epochs: 8,
                ..TrainOptions::default()
            },
        );
        (
            QuantizedMlp::from_mlp(&mlp, Encoding::TwosComplement),
            test_set,
        )
    }

    fn ideal_memory_for(q: &QuantizedMlp) -> SynapticMemory {
        let words = layout::bank_words(q);
        let map = SynapticMemoryMap::new(&words, &ProtectionPolicy::Uniform6T, SubArrayDims::PAPER);
        let models = vec![WordFailureModel::ideal(); words.len()];
        SynapticMemory::new(map, models, 17)
    }

    #[test]
    fn system_matches_float_network_on_clean_memory() {
        let (q, test_set) = trained_small_net();
        let npe = Npe::new(q.format);
        let mut system = NeuromorphicSystem::new(&q, ideal_memory_for(&q), npe);
        let fixed_acc = system.accuracy(&test_set);
        let float_acc = accuracy(&q.to_mlp(), &test_set);
        assert!(
            (fixed_acc - float_acc).abs() < 0.1,
            "fixed-point {fixed_acc} vs float {float_acc}"
        );
        // The datapath must actually have read the memory.
        assert!(system.memory().counts().reads > 0);
    }

    #[test]
    fn heavy_lsb_faults_barely_hurt_but_msb_faults_kill() {
        let (q, test_set) = trained_small_net();
        let test_set = test_set.take(40);
        let npe = Npe::new(q.format);

        let clean_acc = {
            let mut s = NeuromorphicSystem::new(&q, ideal_memory_for(&q), npe.clone());
            s.accuracy(&test_set)
        };

        let words = layout::bank_words(&q);
        // LSB-only faults (hybrid with every bit but bit0 protected).
        let policy = ProtectionPolicy::MsbProtected { msb_8t: 7 };
        let map = SynapticMemoryMap::new(&words, &policy, SubArrayDims::PAPER);
        let rates = BitErrorRates {
            read_6t: 0.3,
            write_6t: 0.0,
            read_8t: 0.0,
            write_8t: 0.0,
        };
        let models: Vec<WordFailureModel> = (0..words.len())
            .map(|b| WordFailureModel::new(&rates, &policy.assignment(b)))
            .collect();
        let mut lsb_system =
            NeuromorphicSystem::new(&q, SynapticMemory::new(map, models, 3), npe.clone());
        let lsb_acc = lsb_system.accuracy(&test_set);

        // Uniform faults at the same rate (MSBs exposed).
        let policy = ProtectionPolicy::Uniform6T;
        let map = SynapticMemoryMap::new(&words, &policy, SubArrayDims::PAPER);
        let models: Vec<WordFailureModel> = (0..words.len())
            .map(|b| WordFailureModel::new(&rates, &policy.assignment(b)))
            .collect();
        let mut uniform_system =
            NeuromorphicSystem::new(&q, SynapticMemory::new(map, models, 3), npe);
        let uniform_acc = uniform_system.accuracy(&test_set);

        assert!(
            lsb_acc > clean_acc - 0.15,
            "LSB faults must be benign: clean {clean_acc}, lsb {lsb_acc}"
        );
        assert!(
            uniform_acc < lsb_acc,
            "MSB exposure must hurt more: uniform {uniform_acc} vs lsb {lsb_acc}"
        );
    }

    #[test]
    #[should_panic(expected = "does not match the network")]
    fn mismatched_memory_panics() {
        let (q, _) = trained_small_net();
        let map = SynapticMemoryMap::new(&[10], &ProtectionPolicy::Uniform6T, SubArrayDims::PAPER);
        let memory = SynapticMemory::new(map, vec![WordFailureModel::ideal()], 0);
        let _ = NeuromorphicSystem::new(&q, memory, Npe::new(q.format));
    }
}
