//! System controller: sequences NPE computations against the synaptic memory.
//!
//! This is the digital ASIC of paper Fig. 2 in behavioral form: the
//! controller walks the network layer by layer, streams each neuron's weight
//! words out of the (possibly faulty, voltage-scaled) synaptic memory, feeds
//! the NPE MAC, and latches the activations for the next layer. Every weight
//! read goes through the behavioral memory, so per-access read faults land
//! exactly where the hardware would see them.
//!
//! # Shared-state inference
//!
//! The weight image and the NPE are **read-only** once the network is
//! loaded, so inference takes `&self`: any number of workers can classify
//! through one [`NeuromorphicSystem`] concurrently. Everything mutable —
//! the per-request fault RNG and the layer scratch buffers — lives in an
//! [`InferContext`] the caller threads through. A context is seeded as
//! `derive_seed(base_seed, request_id)`, so the fault bits a request sees
//! are a pure function of `(base_seed, request_id)`: serving the same
//! request stream at any worker count, in any order, in any batching,
//! replays bit-identical predictions. The serving layer (`sram_serve`)
//! builds directly on this contract.

use crate::layout;
use crate::npe::{encode_activation, Npe};
use neural::quant::QuantizedMlp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sram_array::sharded::ShardedMemory;
use sram_exec::derive_seed;
use std::sync::Arc;

/// Base seed of the legacy `&mut self` entry points when none is given.
const DEFAULT_BASE_SEED: u64 = 0x001F_E25E_EDD0;

/// Index of the largest code, ties broken to the **lowest** index (a plain
/// `max_by_key` keeps the *last* maximum, which would make serving
/// tie-breaks disagree with the float evaluator's argmax).
fn argmax_lowest(codes: &[u8]) -> Option<usize> {
    let mut best = 0usize;
    for (i, &code) in codes.iter().enumerate().skip(1) {
        if code > codes[best] {
            best = i;
        }
    }
    (!codes.is_empty()).then_some(best)
}

/// Shape of one layer as seen by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LayerShape {
    inputs: usize,
    outputs: usize,
}

/// Per-request mutable state: the fault RNG plus the controller's scratch
/// buffers, hoisted out of [`NeuromorphicSystem`] so inference can run on
/// shared `&self`.
///
/// Reusing one context across requests (re-seeding with
/// [`reset`](Self::reset)) keeps the scratch allocations warm — that is
/// what the serving layer's micro-batches amortize — without ever leaking
/// randomness between requests: the RNG is rebuilt from the request's seed,
/// never resumed.
#[derive(Debug, Clone)]
pub struct InferContext {
    rng: StdRng,
    weight_buf: Vec<u8>,
    mask_buf: Vec<u8>,
    activations: Vec<u8>,
    next: Vec<u8>,
    fault_bits: u64,
    reads: u64,
}

impl InferContext {
    /// A context for request `request_id` of the stream rooted at
    /// `base_seed`; the fault randomness is `derive_seed(base_seed,
    /// request_id)` — independent of worker, order, and batch placement.
    ///
    /// Scratch buffers start empty and grow on first use; prefer
    /// [`NeuromorphicSystem::make_context`], which pre-sizes them from the
    /// layer shapes so no request ever reallocates.
    pub fn for_request(base_seed: u64, request_id: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(derive_seed(base_seed, request_id)),
            weight_buf: Vec::new(),
            mask_buf: Vec::new(),
            activations: Vec::new(),
            next: Vec::new(),
            fault_bits: 0,
            reads: 0,
        }
    }

    /// Re-arms the context for another request, keeping the scratch buffers
    /// but replacing the RNG and clearing the per-request counters. After
    /// `ctx.reset(b, r)` the context behaves exactly like
    /// `InferContext::for_request(b, r)`.
    pub fn reset(&mut self, base_seed: u64, request_id: u64) {
        self.rng = StdRng::seed_from_u64(derive_seed(base_seed, request_id));
        self.fault_bits = 0;
        self.reads = 0;
    }

    /// Read-fault bits injected during the requests since the last reset.
    pub fn fault_bits(&self) -> u64 {
        self.fault_bits
    }

    /// Memory words read since the last reset.
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

/// The neuromorphic system: NPE bank + controller + synaptic memory.
///
/// The weight store is the bank-parallel [`ShardedMemory`]; since the
/// sharded store is bit-identical to the monolithic reference at every
/// shard count, the shard count is a pure throughput knob — predictions
/// never depend on it.
///
/// The store is held behind an [`Arc`] so several resident systems
/// (tenants) can share one physical memory, each addressing its own bank
/// window via [`new_resident`](Self::new_resident). A single-tenant system
/// built with [`new`](Self::new) owns its `Arc` uniquely, so the
/// maintenance port ([`memory_mut`](Self::memory_mut)) still works there.
#[derive(Debug)]
pub struct NeuromorphicSystem {
    npe: Npe,
    memory: Arc<ShardedMemory>,
    shapes: Vec<LayerShape>,
    /// Global word index of this system's first weight word inside the
    /// (possibly shared) store; `0` for a single-tenant store.
    base_addr: usize,
    base_seed: u64,
    /// Requests served through the legacy `&mut self` entry points; each
    /// gets the next id of the default stream.
    served: u64,
}

impl NeuromorphicSystem {
    /// Builds the system by loading a quantized network into the given
    /// memory (through its faulty write path).
    ///
    /// # Panics
    ///
    /// Panics if the memory's bank layout does not match the network
    /// (`layout::bank_words`).
    pub fn new(network: &QuantizedMlp, mut memory: ShardedMemory, npe: Npe) -> Self {
        let words = layout::bank_words(network);
        let map_words: Vec<usize> = memory.map().banks().iter().map(|b| b.words).collect();
        assert_eq!(
            words, map_words,
            "memory bank layout does not match the network"
        );
        memory.load(&layout::flatten(network));
        Self {
            npe,
            memory: Arc::new(memory),
            shapes: Self::shapes_of(network),
            base_addr: 0,
            base_seed: DEFAULT_BASE_SEED,
            served: 0,
        }
    }

    /// Builds a **resident** system over a shared store: the network's
    /// weights are assumed to already be loaded into the store's banks
    /// starting at `first_bank` (the multi-tenant registry loads one
    /// concatenated image before sharing the `Arc`). No write traffic is
    /// issued; the system only validates the bank window and computes its
    /// base address.
    ///
    /// # Panics
    ///
    /// Panics if the store's banks at `first_bank..` do not match the
    /// network's `layout::bank_words`.
    pub fn new_resident(
        network: &QuantizedMlp,
        store: Arc<ShardedMemory>,
        first_bank: usize,
        npe: Npe,
    ) -> Self {
        let words = layout::bank_words(network);
        let banks = store.map().banks();
        assert!(
            first_bank + words.len() <= banks.len(),
            "bank window {first_bank}..{} beyond the store's {} banks",
            first_bank + words.len(),
            banks.len()
        );
        let window: Vec<usize> = banks[first_bank..first_bank + words.len()]
            .iter()
            .map(|b| b.words)
            .collect();
        assert_eq!(
            words, window,
            "memory bank layout does not match the network"
        );
        let base_addr = banks[..first_bank].iter().map(|b| b.words).sum();
        Self {
            npe,
            memory: store,
            shapes: Self::shapes_of(network),
            base_addr,
            base_seed: DEFAULT_BASE_SEED,
            served: 0,
        }
    }

    fn shapes_of(network: &QuantizedMlp) -> Vec<LayerShape> {
        network
            .layers
            .iter()
            .map(|l| LayerShape {
                inputs: l.inputs,
                outputs: l.outputs,
            })
            .collect()
    }

    /// Sets the base seed of the legacy `&mut self` entry points (builder
    /// style). Explicit contexts are unaffected — they carry their own.
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Access to the underlying sharded memory (e.g. for energy accounting
    /// or per-shard traffic attribution).
    pub fn memory(&self) -> &ShardedMemory {
        &self.memory
    }

    /// Mutable access to the underlying sharded memory — the maintenance
    /// port the resilience layer scrubs, repairs, and degrades through.
    /// Serving itself never needs this: all request-path reads go through
    /// `&self`.
    ///
    /// # Panics
    ///
    /// Panics if the store is shared with other resident systems (built
    /// via [`new_resident`](Self::new_resident) off a still-live `Arc`):
    /// maintenance on a multi-tenant store goes through the registry,
    /// which owns the unique handle.
    pub fn memory_mut(&mut self) -> &mut ShardedMemory {
        Arc::get_mut(&mut self.memory)
            .expect("memory_mut on a store shared with other resident systems")
    }

    /// Feature width of the input layer (what `classify_request` expects).
    pub fn input_width(&self) -> usize {
        self.shapes.first().map_or(0, |s| s.inputs)
    }

    /// Width of the output layer (number of classes).
    pub fn output_classes(&self) -> usize {
        self.shapes.last().map_or(0, |s| s.outputs)
    }

    /// A context for request `request_id` of the stream rooted at
    /// `base_seed`, with every scratch buffer pre-sized from this system's
    /// layer shapes — the warm path never reallocates, not even on the
    /// first request. Behaviorally identical to
    /// [`InferContext::for_request`].
    pub fn make_context(&self, base_seed: u64, request_id: u64) -> InferContext {
        let mut ctx = InferContext::for_request(base_seed, request_id);
        let row = self.shapes.iter().map(|s| s.inputs).max().unwrap_or(0);
        let width = self
            .shapes
            .iter()
            .map(|s| s.inputs.max(s.outputs))
            .max()
            .unwrap_or(0);
        ctx.weight_buf.reserve_exact(row);
        ctx.mask_buf.reserve_exact(row);
        ctx.activations.reserve_exact(width);
        ctx.next.reserve_exact(width);
        ctx
    }

    /// Weight + bias words one full forward pass reads.
    pub fn reads_per_inference(&self) -> usize {
        self.shapes
            .iter()
            .map(|s| s.inputs * s.outputs + s.outputs)
            .sum()
    }

    /// Multiply-accumulates per inference (for energy accounting).
    pub fn macs_per_inference(&self) -> usize {
        self.shapes.iter().map(|s| s.inputs * s.outputs).sum()
    }

    /// Runs a full forward pass on shared state; returns the output
    /// activation codes (borrowed from the context's scratch).
    ///
    /// Each neuron's weight row is fetched in one
    /// [`read_row_shared`](ShardedMemory::read_row_shared) call into the
    /// context's scratch (no per-word address resolve or push churn), then
    /// accumulated by the NPE's fused 8-lane MAC. Stream-equivalent to the
    /// word-at-a-time datapath: the row fetch draws the same masks in the
    /// same order as `inputs` scalar reads, and the per-neuron bias read
    /// keeps its place in the stream right after its weight row.
    ///
    /// # Panics
    ///
    /// Panics if the feature count does not match the input layer.
    pub fn infer_request<'c>(&self, features: &[f32], ctx: &'c mut InferContext) -> &'c [u8] {
        assert_eq!(
            features.len(),
            self.shapes[0].inputs,
            "input width mismatch"
        );
        ctx.activations.clear();
        ctx.activations
            .extend(features.iter().map(|&f| encode_activation(f)));
        let mut bank_base = self.base_addr;
        for shape in &self.shapes {
            ctx.next.clear();
            for neuron in 0..shape.outputs {
                let row_start = bank_base + layout::weight_offset(shape.inputs, neuron, 0);
                ctx.fault_bits += self.memory.read_row_shared(
                    row_start,
                    shape.inputs,
                    &mut ctx.rng,
                    &mut ctx.weight_buf,
                    &mut ctx.mask_buf,
                );
                let (bias, mask) = self.memory.read_shared(
                    bank_base + layout::bias_offset(shape.inputs, shape.outputs, neuron),
                    &mut ctx.rng,
                );
                ctx.fault_bits += u64::from(mask.count_ones());
                ctx.reads += (shape.inputs + 1) as u64;
                ctx.next
                    .push(self.npe.neuron(&ctx.weight_buf, bias, &ctx.activations));
            }
            bank_base += shape.inputs * shape.outputs + shape.outputs;
            std::mem::swap(&mut ctx.activations, &mut ctx.next);
        }
        &ctx.activations
    }

    /// Classifies one input sample on shared state; returns the predicted
    /// class index. Ties break to the **lowest** class index, matching the
    /// float evaluator's argmax.
    ///
    /// # Panics
    ///
    /// Panics if the feature count does not match the input layer.
    pub fn classify_request(&self, features: &[f32], ctx: &mut InferContext) -> usize {
        let outputs = self.infer_request(features, ctx);
        argmax_lowest(outputs).expect("non-empty output layer")
    }

    /// Classifies a micro-batch sharing one physical row fetch per neuron
    /// across all requests — the batch-amortized datapath the serving
    /// layer uses when the memory is read-fault-free.
    ///
    /// On such a memory the scalar datapath draws **zero** randomness, so
    /// feeding every request from one fetch perturbs nothing: outputs,
    /// fault accounting (all zeros), per-context read counts, and each
    /// context's RNG state are byte-identical to running
    /// [`classify_request`](Self::classify_request) per request. Shard
    /// read counters are kept identical too, by billing the shared fetch
    /// once per request via
    /// [`charge_reads`](ShardedMemory::charge_reads).
    ///
    /// # Panics
    ///
    /// Panics if the memory can fault a read, if `batch` and `ctxs`
    /// lengths differ, or on a feature-width mismatch.
    pub fn classify_batch(&self, batch: &[&[f32]], ctxs: &mut [InferContext]) -> Vec<usize> {
        assert!(
            self.memory.read_fault_free(),
            "batch-amortized path requires a read-fault-free memory"
        );
        assert_eq!(batch.len(), ctxs.len(), "one context per request");
        for (features, ctx) in batch.iter().zip(ctxs.iter_mut()) {
            assert_eq!(
                features.len(),
                self.shapes[0].inputs,
                "input width mismatch"
            );
            ctx.activations.clear();
            ctx.activations
                .extend(features.iter().map(|&f| encode_activation(f)));
        }
        let copies = batch.len();
        // The shared row scratch; the RNG is never drawn from on a
        // read-fault-free memory, it only satisfies the fetch signature.
        let mut row = Vec::new();
        let mut row_masks = Vec::new();
        let mut no_draws = StdRng::seed_from_u64(0);
        let mut bank_base = self.base_addr;
        for shape in &self.shapes {
            for ctx in ctxs.iter_mut() {
                ctx.next.clear();
            }
            for neuron in 0..shape.outputs {
                let row_start = bank_base + layout::weight_offset(shape.inputs, neuron, 0);
                let faults = self.memory.read_row_shared(
                    row_start,
                    shape.inputs,
                    &mut no_draws,
                    &mut row,
                    &mut row_masks,
                );
                debug_assert_eq!(faults, 0, "read-fault-free memory faulted");
                self.memory
                    .charge_reads(row_start, shape.inputs, copies - 1);
                let bias_index =
                    bank_base + layout::bias_offset(shape.inputs, shape.outputs, neuron);
                let (bias, _) = self.memory.read_shared(bias_index, &mut no_draws);
                self.memory.charge_reads(bias_index, 1, copies - 1);
                for ctx in ctxs.iter_mut() {
                    ctx.next.push(self.npe.neuron(&row, bias, &ctx.activations));
                }
            }
            bank_base += shape.inputs * shape.outputs + shape.outputs;
            for ctx in ctxs.iter_mut() {
                std::mem::swap(&mut ctx.activations, &mut ctx.next);
            }
        }
        let reads = self.reads_per_inference() as u64;
        ctxs.iter_mut()
            .map(|ctx| {
                ctx.reads += reads;
                argmax_lowest(&ctx.activations).expect("non-empty output layer")
            })
            .collect()
    }

    /// Classifies one input sample (features in `[0, 1]`); returns the
    /// predicted class index. Legacy single-owner entry point: request ids
    /// come from an internal counter on the system's base seed.
    ///
    /// # Panics
    ///
    /// Panics if the feature count does not match the input layer.
    pub fn classify(&mut self, features: &[f32]) -> usize {
        let mut ctx = self.next_legacy_context();
        self.classify_request(features, &mut ctx)
    }

    /// Runs a full forward pass; returns the output activation codes.
    /// Legacy single-owner entry point (see [`classify`](Self::classify)).
    ///
    /// # Panics
    ///
    /// Panics if the feature count does not match the input layer.
    pub fn infer(&mut self, features: &[f32]) -> Vec<u8> {
        let mut ctx = self.next_legacy_context();
        self.infer_request(features, &mut ctx).to_vec()
    }

    fn next_legacy_context(&mut self) -> InferContext {
        let ctx = InferContext::for_request(self.base_seed, self.served);
        self.served += 1;
        ctx
    }

    /// Classification accuracy over a dataset, running every sample through
    /// the full memory-faulting datapath. Sample `i` is request `i` of the
    /// stream rooted at `base_seed`, so samples are independent and fan out
    /// on the `sram_exec` pool — bit-identical to
    /// [`accuracy_sequential`](Self::accuracy_sequential) at any worker
    /// count.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or feature-width mismatch.
    pub fn accuracy(&self, data: &neural::dataset::Dataset, base_seed: u64) -> f64 {
        assert!(!data.is_empty(), "empty dataset");
        let correct: Vec<bool> = sram_exec::par_map_indexed(data.len(), |i| {
            let mut ctx = InferContext::for_request(base_seed, i as u64);
            self.classify_request(data.image(i), &mut ctx) == data.label(i)
        });
        correct.iter().filter(|&&c| c).count() as f64 / data.len() as f64
    }

    /// The sequential reference fold of [`accuracy`](Self::accuracy): one
    /// warm context, samples in order. Exists so tests can pin the parallel
    /// fan-out bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or feature-width mismatch.
    pub fn accuracy_sequential(&self, data: &neural::dataset::Dataset, base_seed: u64) -> f64 {
        assert!(!data.is_empty(), "empty dataset");
        let mut ctx = InferContext::for_request(base_seed, 0);
        let mut correct = 0usize;
        for i in 0..data.len() {
            ctx.reset(base_seed, i as u64);
            if self.classify_request(data.image(i), &mut ctx) == data.label(i) {
                correct += 1;
            }
        }
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_inject::model::{BitErrorRates, WordFailureModel};
    use fault_inject::protection::ProtectionPolicy;
    use neural::dataset::synth;
    use neural::eval::accuracy;
    use neural::network::Mlp;
    use neural::quant::{Encoding, QuantizedMlp};
    use neural::train::{train, TrainOptions};
    use sram_array::organization::{SubArrayDims, SynapticMemoryMap};

    fn sharded(
        words: &[usize],
        policy: &ProtectionPolicy,
        rates: &BitErrorRates,
        seed: u64,
        shards: usize,
    ) -> ShardedMemory {
        let map = SynapticMemoryMap::new(words, policy, SubArrayDims::PAPER);
        let models: Vec<WordFailureModel> = (0..words.len())
            .map(|b| WordFailureModel::new(rates, &policy.assignment(b)))
            .collect();
        ShardedMemory::new(map, models, seed, shards)
    }

    fn trained_small_net() -> (QuantizedMlp, neural::dataset::Dataset) {
        let data = synth::generate_default(400, 21);
        let (train_set, test_set) = data.split(0.75, 3);
        let mut mlp = Mlp::new(&[784, 24, 10], 5);
        train(
            &mut mlp,
            &train_set,
            &TrainOptions {
                epochs: 8,
                ..TrainOptions::default()
            },
        );
        (
            QuantizedMlp::from_mlp(&mlp, Encoding::TwosComplement),
            test_set,
        )
    }

    fn ideal_memory_for(q: &QuantizedMlp) -> ShardedMemory {
        let words = layout::bank_words(q);
        let map = SynapticMemoryMap::new(&words, &ProtectionPolicy::Uniform6T, SubArrayDims::PAPER);
        let models = vec![WordFailureModel::ideal(); words.len()];
        ShardedMemory::new(map, models, 17, 3)
    }

    #[test]
    fn system_matches_float_network_on_clean_memory() {
        let (q, test_set) = trained_small_net();
        let npe = Npe::new(q.format);
        let system = NeuromorphicSystem::new(&q, ideal_memory_for(&q), npe);
        let fixed_acc = system.accuracy(&test_set, 11);
        let float_acc = accuracy(&q.to_mlp(), &test_set);
        assert!(
            (fixed_acc - float_acc).abs() < 0.1,
            "fixed-point {fixed_acc} vs float {float_acc}"
        );
        // The datapath must actually have read the memory.
        assert!(system.memory().counts().reads > 0);
        assert_eq!(
            system.memory().counts().reads,
            test_set.len() * system.reads_per_inference()
        );
    }

    #[test]
    fn predictions_are_shard_count_invariant() {
        let (q, test_set) = trained_small_net();
        let test_set = test_set.take(40);
        let words = layout::bank_words(&q);
        let policy = ProtectionPolicy::MsbProtected { msb_8t: 3 };
        let rates = BitErrorRates {
            read_6t: 0.1,
            write_6t: 0.02,
            read_8t: 0.0,
            write_8t: 0.0,
        };
        let mut reference: Option<Vec<usize>> = None;
        for shards in [1usize, 2, 4, 7] {
            let memory = sharded(&words, &policy, &rates, 5, shards);
            assert_eq!(
                memory.shard_count(),
                shards,
                "network must span {shards} shards"
            );
            let system = NeuromorphicSystem::new(&q, memory, Npe::new(q.format));
            let predictions: Vec<usize> = (0..test_set.len())
                .map(|i| {
                    let mut ctx = InferContext::for_request(77, i as u64);
                    system.classify_request(test_set.image(i), &mut ctx)
                })
                .collect();
            match &reference {
                None => reference = Some(predictions),
                Some(r) => assert_eq!(
                    &predictions, r,
                    "{shards}-shard predictions diverged from 1-shard"
                ),
            }
        }
    }

    #[test]
    fn parallel_accuracy_is_bit_identical_to_the_sequential_fold() {
        let (q, test_set) = trained_small_net();
        let test_set = test_set.take(60);
        let words = layout::bank_words(&q);
        let policy = ProtectionPolicy::MsbProtected { msb_8t: 4 };
        let rates = BitErrorRates {
            read_6t: 0.08,
            write_6t: 0.01,
            read_8t: 0.0,
            write_8t: 0.0,
        };
        let system = NeuromorphicSystem::new(
            &q,
            sharded(&words, &policy, &rates, 5, 2),
            Npe::new(q.format),
        );
        let reference = system.accuracy_sequential(&test_set, 77);
        for threads in [1usize, 2, 4] {
            sram_exec::set_threads(threads);
            let parallel = system.accuracy(&test_set, 77);
            assert!(
                parallel == reference,
                "accuracy at {threads} workers ({parallel}) != sequential ({reference})"
            );
        }
        sram_exec::clear_threads();
    }

    #[test]
    fn request_context_is_a_pure_function_of_its_seed() {
        let (q, test_set) = trained_small_net();
        let words = layout::bank_words(&q);
        let policy = ProtectionPolicy::Uniform6T;
        let rates = BitErrorRates {
            read_6t: 0.2,
            write_6t: 0.0,
            read_8t: 0.0,
            write_8t: 0.0,
        };
        let system = NeuromorphicSystem::new(
            &q,
            sharded(&words, &policy, &rates, 9, 4),
            Npe::new(q.format),
        );
        let img = test_set.image(0);

        // Fresh context vs a context warmed on other requests then reset:
        // identical outputs and identical fault accounting.
        let mut fresh = InferContext::for_request(3, 8);
        let out_fresh = system.infer_request(img, &mut fresh).to_vec();
        let (fresh_faults, fresh_reads) = (fresh.fault_bits(), fresh.reads());

        let mut warm = InferContext::for_request(3, 0);
        for id in 0..4 {
            warm.reset(3, id);
            let _ = system.infer_request(img, &mut warm);
        }
        warm.reset(3, 8);
        let out_warm = system.infer_request(img, &mut warm).to_vec();
        assert_eq!(out_fresh, out_warm);
        assert_eq!(fresh_faults, warm.fault_bits());
        assert_eq!(fresh_reads, warm.reads());
        assert_eq!(fresh_reads, system.reads_per_inference() as u64);
        assert!(fresh_faults > 0, "20% read faults must show up");

        // Replaying the same request id is exact; a different id draws an
        // independent fault stream (the *number* of faulted bits may
        // coincide, so compare a replay instead of a neighbor).
        let mut replay = InferContext::for_request(3, 8);
        assert_eq!(out_fresh, system.infer_request(img, &mut replay).to_vec());
        assert_eq!(replay.fault_bits(), fresh_faults);
    }

    #[test]
    fn heavy_lsb_faults_barely_hurt_but_msb_faults_kill() {
        let (q, test_set) = trained_small_net();
        let test_set = test_set.take(40);
        let npe = Npe::new(q.format);

        let clean_acc = {
            let s = NeuromorphicSystem::new(&q, ideal_memory_for(&q), npe.clone());
            s.accuracy(&test_set, 3)
        };

        let words = layout::bank_words(&q);
        // LSB-only faults (hybrid with every bit but bit0 protected).
        let policy = ProtectionPolicy::MsbProtected { msb_8t: 7 };
        let rates = BitErrorRates {
            read_6t: 0.3,
            write_6t: 0.0,
            read_8t: 0.0,
            write_8t: 0.0,
        };
        let lsb_system =
            NeuromorphicSystem::new(&q, sharded(&words, &policy, &rates, 3, 2), npe.clone());
        let lsb_acc = lsb_system.accuracy(&test_set, 3);

        // Uniform faults at the same rate (MSBs exposed).
        let policy = ProtectionPolicy::Uniform6T;
        let uniform_system =
            NeuromorphicSystem::new(&q, sharded(&words, &policy, &rates, 3, 2), npe);
        let uniform_acc = uniform_system.accuracy(&test_set, 3);

        assert!(
            lsb_acc > clean_acc - 0.15,
            "LSB faults must be benign: clean {clean_acc}, lsb {lsb_acc}"
        );
        assert!(
            uniform_acc < lsb_acc,
            "MSB exposure must hurt more: uniform {uniform_acc} vs lsb {lsb_acc}"
        );
    }

    #[test]
    fn legacy_entry_points_still_serve() {
        let (q, test_set) = trained_small_net();
        let mut system = NeuromorphicSystem::new(&q, ideal_memory_for(&q), Npe::new(q.format))
            .with_base_seed(99);
        let class = system.classify(test_set.image(0));
        assert!(class < 10);
        let outputs = system.infer(test_set.image(1));
        assert_eq!(outputs.len(), 10);
        // On an ideal memory the legacy path matches the shared path.
        let mut ctx = InferContext::for_request(0, 0);
        assert_eq!(class, system.classify_request(test_set.image(0), &mut ctx));
    }

    #[test]
    fn argmax_ties_break_to_the_lowest_index() {
        assert_eq!(argmax_lowest(&[3, 7, 7, 2]), Some(1));
        assert_eq!(argmax_lowest(&[9]), Some(0));
        assert_eq!(argmax_lowest(&[0, 0, 0]), Some(0));
        assert_eq!(argmax_lowest(&[1, 2, 3, 3]), Some(2));
        assert_eq!(argmax_lowest(&[255, 255]), Some(0));
        assert_eq!(argmax_lowest(&[]), None);
    }

    #[test]
    fn make_context_pre_sizes_all_scratch() {
        let (q, test_set) = trained_small_net();
        let system = NeuromorphicSystem::new(&q, ideal_memory_for(&q), Npe::new(q.format));
        let mut warm = system.make_context(7, 0);
        let caps = (
            warm.weight_buf.capacity(),
            warm.mask_buf.capacity(),
            warm.activations.capacity(),
            warm.next.capacity(),
        );
        assert!(caps.0 >= 784, "weight scratch {} < widest row", caps.0);
        assert!(caps.1 >= 784, "mask scratch {} < widest row", caps.1);
        assert!(
            caps.2 >= 784,
            "activation scratch {} < widest layer",
            caps.2
        );
        assert!(caps.3 >= 784, "next scratch {} < widest layer", caps.3);
        for id in 0..3u64 {
            warm.reset(7, id);
            let _ = system.infer_request(test_set.image(id as usize), &mut warm);
        }
        let after = (
            warm.weight_buf.capacity(),
            warm.mask_buf.capacity(),
            warm.activations.capacity(),
            warm.next.capacity(),
        );
        assert_eq!(after, caps, "warm requests must never grow the scratch");

        // A pre-sized context behaves exactly like a fresh unsized one.
        let mut fresh = InferContext::for_request(7, 5);
        let out_fresh = system.infer_request(test_set.image(5), &mut fresh).to_vec();
        warm.reset(7, 5);
        let out_warm = system.infer_request(test_set.image(5), &mut warm).to_vec();
        assert_eq!(out_fresh, out_warm);
        assert_eq!(fresh.reads(), warm.reads());
    }

    #[test]
    fn batch_path_is_byte_identical_to_scalar_requests() {
        let (q, test_set) = trained_small_net();
        let batch_sys = NeuromorphicSystem::new(&q, ideal_memory_for(&q), Npe::new(q.format));
        let scalar_sys = NeuromorphicSystem::new(&q, ideal_memory_for(&q), Npe::new(q.format));
        assert!(batch_sys.memory().read_fault_free());
        let n = 8usize;
        let batch: Vec<&[f32]> = (0..n).map(|i| test_set.image(i)).collect();
        let mut ctxs: Vec<InferContext> = (0..n)
            .map(|i| batch_sys.make_context(5, i as u64))
            .collect();
        let predictions = batch_sys.classify_batch(&batch, &mut ctxs);
        for i in 0..n {
            let mut ctx = scalar_sys.make_context(5, i as u64);
            let scalar = scalar_sys.classify_request(test_set.image(i), &mut ctx);
            assert_eq!(predictions[i], scalar, "request {i}");
            assert_eq!(ctxs[i].reads(), ctx.reads(), "request {i} read accounting");
            assert_eq!(ctxs[i].fault_bits(), 0);
            assert_eq!(ctxs[i].rng, ctx.rng, "request {i} stream was perturbed");
        }
        assert_eq!(
            batch_sys.memory().shard_counts(),
            scalar_sys.memory().shard_counts(),
            "shared fetches must bill identical shard traffic"
        );
    }

    #[test]
    #[should_panic(expected = "read-fault-free")]
    fn batch_path_rejects_faulting_memories() {
        let (q, test_set) = trained_small_net();
        let words = layout::bank_words(&q);
        let policy = ProtectionPolicy::Uniform6T;
        let rates = BitErrorRates {
            read_6t: 0.1,
            write_6t: 0.0,
            read_8t: 0.0,
            write_8t: 0.0,
        };
        let system = NeuromorphicSystem::new(
            &q,
            sharded(&words, &policy, &rates, 1, 2),
            Npe::new(q.format),
        );
        let batch: Vec<&[f32]> = vec![test_set.image(0)];
        let mut ctxs = vec![system.make_context(0, 0)];
        let _ = system.classify_batch(&batch, &mut ctxs);
    }

    /// Two tenants laid out back-to-back in one shared store, the way the
    /// serving registry builds it: concatenated maps, concatenated
    /// per-bank failure models, one concatenated image load.
    fn shared_two_tenant_store(
        qa: &QuantizedMlp,
        pol_a: &ProtectionPolicy,
        rates_a: &BitErrorRates,
        qb: &QuantizedMlp,
        pol_b: &ProtectionPolicy,
        rates_b: &BitErrorRates,
        seed: u64,
    ) -> Arc<ShardedMemory> {
        let words_a = layout::bank_words(qa);
        let words_b = layout::bank_words(qb);
        let map = SynapticMemoryMap::concat([
            SynapticMemoryMap::new(&words_a, pol_a, SubArrayDims::PAPER),
            SynapticMemoryMap::new(&words_b, pol_b, SubArrayDims::PAPER),
        ]);
        let mut models: Vec<WordFailureModel> = (0..words_a.len())
            .map(|b| WordFailureModel::new(rates_a, &pol_a.assignment(b)))
            .collect();
        models.extend(
            (0..words_b.len()).map(|b| WordFailureModel::new(rates_b, &pol_b.assignment(b))),
        );
        let mut store = ShardedMemory::new(map, models, seed, 3);
        let mut image = layout::flatten(qa);
        image.extend(layout::flatten(qb));
        store.load(&image);
        Arc::new(store)
    }

    #[test]
    fn resident_tenants_match_their_standalone_systems() {
        let qa = QuantizedMlp::from_mlp(&Mlp::new(&[12, 8, 4], 11), Encoding::TwosComplement);
        let qb = QuantizedMlp::from_mlp(&Mlp::new(&[9, 6, 3], 12), Encoding::TwosComplement);
        let pol_a = ProtectionPolicy::MsbProtected { msb_8t: 3 };
        let pol_b = ProtectionPolicy::MsbProtected { msb_8t: 5 };
        // Write-fault-free rates: the stored image is then exact in both
        // layouts, and read faults are drawn from the request context's
        // RNG (a pure function of the walk, not of global addresses), so
        // a resident system at a bank offset must replay its standalone
        // twin bit for bit.
        let rates_a = BitErrorRates {
            read_6t: 0.1,
            write_6t: 0.0,
            read_8t: 0.0,
            write_8t: 0.0,
        };
        let rates_b = BitErrorRates {
            read_6t: 0.25,
            write_6t: 0.0,
            read_8t: 0.0,
            write_8t: 0.0,
        };
        let standalone_a = NeuromorphicSystem::new(
            &qa,
            sharded(&layout::bank_words(&qa), &pol_a, &rates_a, 31, 3),
            Npe::new(qa.format),
        );
        let standalone_b = NeuromorphicSystem::new(
            &qb,
            sharded(&layout::bank_words(&qb), &pol_b, &rates_b, 31, 3),
            Npe::new(qb.format),
        );
        let store = shared_two_tenant_store(&qa, &pol_a, &rates_a, &qb, &pol_b, &rates_b, 31);
        let first_bank_b = layout::bank_words(&qa).len();
        let res_a =
            NeuromorphicSystem::new_resident(&qa, Arc::clone(&store), 0, Npe::new(qa.format));
        let res_b = NeuromorphicSystem::new_resident(&qb, store, first_bank_b, Npe::new(qb.format));
        assert_eq!(res_a.input_width(), 12);
        assert_eq!(res_b.output_classes(), 3);
        for id in 0..6u64 {
            let feat_a: Vec<f32> = (0..12)
                .map(|i| ((i * 37 + id as usize) % 100) as f32 / 100.0)
                .collect();
            let feat_b: Vec<f32> = (0..9)
                .map(|i| ((i * 53 + id as usize) % 100) as f32 / 100.0)
                .collect();
            let mut ctx_s = InferContext::for_request(7, id);
            let mut ctx_r = InferContext::for_request(7, id);
            assert_eq!(
                standalone_a.classify_request(&feat_a, &mut ctx_s),
                res_a.classify_request(&feat_a, &mut ctx_r),
                "tenant A request {id}"
            );
            assert_eq!(
                ctx_s.fault_bits(),
                ctx_r.fault_bits(),
                "tenant A faults {id}"
            );
            let mut ctx_s = InferContext::for_request(9, id);
            let mut ctx_r = InferContext::for_request(9, id);
            assert_eq!(
                standalone_b.classify_request(&feat_b, &mut ctx_s),
                res_b.classify_request(&feat_b, &mut ctx_r),
                "tenant B request {id}"
            );
            assert_eq!(
                ctx_s.fault_bits(),
                ctx_r.fault_bits(),
                "tenant B faults {id}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "shared with other resident")]
    fn memory_mut_refuses_shared_stores() {
        let qa = QuantizedMlp::from_mlp(&Mlp::new(&[6, 4, 2], 1), Encoding::TwosComplement);
        let qb = QuantizedMlp::from_mlp(&Mlp::new(&[5, 3, 2], 2), Encoding::TwosComplement);
        let pol = ProtectionPolicy::Uniform6T;
        let rates = BitErrorRates {
            read_6t: 0.0,
            write_6t: 0.0,
            read_8t: 0.0,
            write_8t: 0.0,
        };
        let store = shared_two_tenant_store(&qa, &pol, &rates, &qb, &pol, &rates, 1);
        let mut res_a =
            NeuromorphicSystem::new_resident(&qa, Arc::clone(&store), 0, Npe::new(qa.format));
        let _res_b = NeuromorphicSystem::new_resident(
            &qb,
            store,
            layout::bank_words(&qa).len(),
            Npe::new(qb.format),
        );
        let _ = res_a.memory_mut();
    }

    #[test]
    #[should_panic(expected = "does not match the network")]
    fn mismatched_memory_panics() {
        let (q, _) = trained_small_net();
        let map = SynapticMemoryMap::new(&[10], &ProtectionPolicy::Uniform6T, SubArrayDims::PAPER);
        let memory = ShardedMemory::new(map, vec![WordFailureModel::ideal()], 0, 2);
        let _ = NeuromorphicSystem::new(&q, memory, Npe::new(q.format));
    }
}
