//! Per-inference energy accounting.
//!
//! The paper's premise: synaptic storage dominates system power because
//! synapses outnumber neurons by orders of magnitude. This module makes that
//! concrete for the behavioral system — memory access energy per inference
//! (from the array power rollup), NPE MAC energy (digital logic at scaled
//! voltage and scaled clock), and standby leakage.

use sram_array::power::MemoryPowerReport;
use sram_device::units::{Joule, Second, Volt, Watt};

/// Energy model for the digital (NPE + controller) side.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicEnergyModel {
    /// Energy of one MAC at the nominal supply.
    pub mac_energy_nominal: Joule,
    /// Nominal supply the MAC energy is quoted at.
    pub vdd_nominal: Volt,
}

impl Default for LogicEnergyModel {
    fn default() -> Self {
        Self {
            // ~10 fJ/MAC for an 8-bit MAC in a 22 nm-class process.
            mac_energy_nominal: Joule::from_femtojoules(10.0),
            vdd_nominal: Volt::new(0.95),
        }
    }
}

impl LogicEnergyModel {
    /// MAC energy at a scaled supply (CV² scaling; the logic runs reliably
    /// at scaled voltage by reducing the clock, per the paper).
    pub fn mac_energy(&self, vdd: Volt) -> Joule {
        let scale = (vdd.volts() / self.vdd_nominal.volts()).powi(2);
        self.mac_energy_nominal * scale
    }
}

/// Energy breakdown of one classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceEnergy {
    /// Synaptic-memory access energy (one full weight sweep).
    pub memory_access: Joule,
    /// NPE MAC energy.
    pub logic: Joule,
    /// Leakage over the inference window.
    pub leakage: Joule,
}

impl InferenceEnergy {
    /// Total energy per inference.
    pub fn total(&self) -> Joule {
        self.memory_access + self.logic + self.leakage
    }

    /// Fraction of total spent on synaptic-memory accesses.
    pub fn memory_fraction(&self) -> f64 {
        self.memory_access.joules() / self.total().joules()
    }
}

/// Composes an inference energy estimate.
///
/// * `memory` — array power report at the memory's operating point;
/// * `macs` — multiply-accumulates per inference (= weight count);
/// * `logic` / `logic_vdd` — digital-side model and operating voltage;
/// * `inference_time` — wall time of one inference (sets leakage share).
pub fn inference_energy(
    memory: &MemoryPowerReport,
    macs: usize,
    logic: &LogicEnergyModel,
    logic_vdd: Volt,
    inference_time: Second,
) -> InferenceEnergy {
    let leak: Watt = memory.leakage_power;
    InferenceEnergy {
        memory_access: memory.sweep_energy,
        logic: logic.mac_energy(logic_vdd) * macs as f64,
        leakage: leak * inference_time,
    }
}

/// Whole-system model: logic energy, logic leakage and clocking.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemEnergyModel {
    /// Per-MAC dynamic energy model.
    pub logic: LogicEnergyModel,
    /// Logic clocking (sets the inference wall time as VDD scales).
    pub delay: crate::timing::DelayModel,
    /// Logic-side leakage at the nominal supply.
    pub logic_leakage_nominal: Watt,
    /// MACs retired per clock cycle (NPE parallelism).
    pub macs_per_cycle: usize,
}

impl Default for SystemEnergyModel {
    fn default() -> Self {
        Self {
            logic: LogicEnergyModel::default(),
            delay: crate::timing::DelayModel::default(),
            // ~2 µW of NPE+controller leakage at 0.95 V.
            logic_leakage_nominal: Watt::from_microwatts(2.0),
            macs_per_cycle: 64,
        }
    }
}

/// Energy and latency of one inference with the clock self-scaled to VDD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemEnergyReport {
    /// Component energy breakdown.
    pub energy: InferenceEnergy,
    /// Inference wall time at the scaled clock.
    pub time: Second,
}

impl SystemEnergyReport {
    /// Energy-delay product in joule-seconds — the metric that penalizes
    /// scaling past the point where slowdown outpaces the CV² savings.
    pub fn energy_delay_product(&self) -> f64 {
        self.energy.total().joules() * self.time.seconds()
    }
}

/// Composes the full-system estimate at one operating point: the whole chip
/// (memory and logic) shares supply `vdd`, and the clock is self-scaled by
/// the delay model, which feeds back into the leakage integral.
///
/// `memory` must be the array power report computed at the same `vdd`.
///
/// # Panics
///
/// Panics if `vdd` is at or below the delay model's logic threshold, or if
/// `macs_per_cycle` is zero.
pub fn system_inference_energy(
    memory: &MemoryPowerReport,
    macs: usize,
    model: &SystemEnergyModel,
    vdd: Volt,
) -> SystemEnergyReport {
    assert!(model.macs_per_cycle > 0, "need at least one MAC per cycle");
    let cycles = (macs as u64).div_ceil(model.macs_per_cycle as u64);
    let time = model.delay.elapsed(vdd, cycles);
    let logic_leak = Watt::new(
        model.logic_leakage_nominal.watts() * vdd.volts() / model.logic.vdd_nominal.volts(),
    );
    let leakage = (memory.leakage_power + logic_leak) * time;
    SystemEnergyReport {
        energy: InferenceEnergy {
            memory_access: memory.sweep_energy,
            logic: model.logic.mac_energy(vdd) * macs as f64,
            leakage,
        },
        time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> MemoryPowerReport {
        MemoryPowerReport {
            access_power: Watt::from_microwatts(100.0),
            leakage_power: Watt::from_microwatts(5.0),
            sweep_energy: Joule::from_femtojoules(2.0e9), // 2 µJ
        }
    }

    #[test]
    fn mac_energy_scales_quadratically() {
        let m = LogicEnergyModel::default();
        let full = m.mac_energy(Volt::new(0.95)).joules();
        let half = m.mac_energy(Volt::new(0.475)).joules();
        assert!((full / half - 4.0).abs() < 1e-9);
    }

    #[test]
    fn totals_add_up() {
        let e = inference_energy(
            &report(),
            1_000_000,
            &LogicEnergyModel::default(),
            Volt::new(0.95),
            Second::new(1e-3),
        );
        let expected_logic = 10e-15 * 1e6;
        assert!((e.logic.joules() - expected_logic).abs() < 1e-18);
        let expected_leak = 5e-6 * 1e-3;
        assert!((e.leakage.joules() - expected_leak).abs() < 1e-15);
        assert!((e.total().joules() - (2e-6 + expected_logic + expected_leak)).abs() < 1e-12);
    }

    #[test]
    fn memory_dominates_for_the_paper_network() {
        // 1.4M synapses: the memory share must be the majority — the paper's
        // motivating observation.
        let e = inference_energy(
            &report(),
            1_406_810,
            &LogicEnergyModel::default(),
            Volt::new(0.95),
            Second::new(1e-4),
        );
        assert!(
            e.memory_fraction() > 0.5,
            "memory share {}",
            e.memory_fraction()
        );
    }

    #[test]
    fn system_report_time_tracks_parallelism_and_voltage() {
        let model = SystemEnergyModel::default();
        let macs = 1_406_810;
        let fast = system_inference_energy(&report(), macs, &model, Volt::new(0.95));
        let slow = system_inference_energy(&report(), macs, &model, Volt::new(0.65));
        assert!(slow.time.seconds() > fast.time.seconds());

        let wide = SystemEnergyModel {
            macs_per_cycle: 128,
            ..SystemEnergyModel::default()
        };
        let wider = system_inference_energy(&report(), macs, &wide, Volt::new(0.95));
        assert!((fast.time.seconds() / wider.time.seconds() - 2.0).abs() < 1e-3);
    }

    #[test]
    fn scaled_logic_spends_less_dynamic_but_leaks_longer() {
        let model = SystemEnergyModel::default();
        let macs = 1_406_810;
        let hi = system_inference_energy(&report(), macs, &model, Volt::new(0.95));
        let lo = system_inference_energy(&report(), macs, &model, Volt::new(0.65));
        // Dynamic logic energy follows CV².
        assert!(lo.energy.logic.joules() < hi.energy.logic.joules());
        // Leakage *energy* grows despite lower leakage power: the inference
        // runs longer — the classic limit to voltage scaling.
        assert!(lo.energy.leakage.joules() > hi.energy.leakage.joules());
    }

    #[test]
    fn edp_penalizes_deep_scaling() {
        // Near threshold the slowdown dominates: EDP at 0.45 V must exceed
        // EDP at 0.65 V even though the supply is lower.
        let model = SystemEnergyModel::default();
        let macs = 1_406_810;
        let mid = system_inference_energy(&report(), macs, &model, Volt::new(0.65));
        let deep = system_inference_energy(&report(), macs, &model, Volt::new(0.45));
        assert!(
            deep.energy_delay_product() > mid.energy_delay_product(),
            "EDP must blow up near threshold: {:.3e} vs {:.3e}",
            deep.energy_delay_product(),
            mid.energy_delay_product()
        );
    }

    #[test]
    #[should_panic(expected = "at least one MAC")]
    fn zero_parallelism_panics() {
        let model = SystemEnergyModel {
            macs_per_cycle: 0,
            ..SystemEnergyModel::default()
        };
        let _ = system_inference_energy(&report(), 100, &model, Volt::new(0.95));
    }
}
