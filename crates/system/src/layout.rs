//! Mapping a quantized network into the banked synaptic memory.
//!
//! Bank `i` holds layer `i`'s synapses (the fan-out of layer `i`'s neurons —
//! paper Fig. 3c): first the weight matrix row-major (`outputs × inputs`),
//! then the bias codes. This is the single place that fixes the
//! word-address ↔ synapse correspondence used by the controller and the
//! fault-injection experiments.

use neural::quant::QuantizedMlp;

/// Word counts per bank for a quantized network (weights + biases).
pub fn bank_words(q: &QuantizedMlp) -> Vec<usize> {
    q.layers
        .iter()
        .map(|l| l.weight_codes.len() + l.bias_codes.len())
        .collect()
}

/// Flattens the network into one byte image, bank by bank.
pub fn flatten(q: &QuantizedMlp) -> Vec<u8> {
    let mut image = Vec::with_capacity(q.synapse_count());
    for layer in &q.layers {
        image.extend_from_slice(&layer.weight_codes);
        image.extend_from_slice(&layer.bias_codes);
    }
    image
}

/// Rebuilds a quantized network from a byte image with the same shape as
/// `template` (used after fault injection on the image).
///
/// # Panics
///
/// Panics if the image size does not match the template.
pub fn unflatten(template: &QuantizedMlp, image: &[u8]) -> QuantizedMlp {
    assert_eq!(
        image.len(),
        template.synapse_count(),
        "image size does not match network"
    );
    let mut q = template.clone();
    let mut cursor = 0usize;
    for layer in &mut q.layers {
        let nw = layer.weight_codes.len();
        layer
            .weight_codes
            .copy_from_slice(&image[cursor..cursor + nw]);
        cursor += nw;
        let nb = layer.bias_codes.len();
        layer
            .bias_codes
            .copy_from_slice(&image[cursor..cursor + nb]);
        cursor += nb;
    }
    q
}

/// Word offset of a weight inside its bank: row-major `(neuron, input)`.
pub fn weight_offset(inputs: usize, neuron: usize, input: usize) -> usize {
    neuron * inputs + input
}

/// Word offset of a bias inside its bank (after all weights).
pub fn bias_offset(inputs: usize, outputs: usize, neuron: usize) -> usize {
    inputs * outputs + neuron
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::network::Mlp;
    use neural::quant::{Encoding, QuantizedMlp};

    fn q() -> QuantizedMlp {
        QuantizedMlp::from_mlp(&Mlp::new(&[4, 3, 2], 9), Encoding::TwosComplement)
    }

    #[test]
    fn bank_words_match_table_1_accounting() {
        let q = q();
        let words = bank_words(&q);
        assert_eq!(words, vec![4 * 3 + 3, 3 * 2 + 2]);
        assert_eq!(words.iter().sum::<usize>(), q.synapse_count());
    }

    #[test]
    fn flatten_unflatten_round_trip() {
        let q = q();
        let image = flatten(&q);
        assert_eq!(image.len(), q.synapse_count());
        let back = unflatten(&q, &image);
        assert_eq!(back, q);
    }

    #[test]
    fn unflatten_applies_changes() {
        let q = q();
        let mut image = flatten(&q);
        image[0] ^= 0x80;
        let corrupted = unflatten(&q, &image);
        assert_ne!(
            corrupted.layers[0].weight_codes[0],
            q.layers[0].weight_codes[0]
        );
    }

    #[test]
    fn offsets_are_consistent_with_flatten() {
        let q = q();
        let image = flatten(&q);
        // Weight (neuron 2, input 3) of layer 0.
        let off = weight_offset(4, 2, 3);
        assert_eq!(image[off], q.layers[0].weight_codes[2 * 4 + 3]);
        // Bias of neuron 1 in layer 0.
        let boff = bias_offset(4, 3, 1);
        assert_eq!(image[boff], q.layers[0].bias_codes[1]);
    }

    #[test]
    #[should_panic(expected = "image size")]
    fn wrong_image_size_panics() {
        let q = q();
        let _ = unflatten(&q, &[0u8; 3]);
    }
}
