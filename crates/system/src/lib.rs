//! # neuro-system
//!
//! Behavioral model of the paper's digital neuromorphic ASIC (Fig. 2):
//! fixed-point [`npe`]s with a sigmoid LUT, the [`controller`] that streams
//! weights out of the behavioral synaptic memory (so per-access read faults
//! land exactly where hardware would see them), the network-to-memory
//! [`layout`], and per-inference [`energy`] accounting.
//!
//! # Examples
//!
//! See [`controller::NeuromorphicSystem`] for an end-to-end inference run;
//! the `system_inference` example at the workspace root classifies synthetic
//! digits through a voltage-scaled memory.

#![warn(missing_docs)]

pub mod controller;
pub mod energy;
pub mod layout;
pub mod npe;
pub mod timing;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::controller::{InferContext, NeuromorphicSystem};
    pub use crate::energy::{
        inference_energy, system_inference_energy, InferenceEnergy, LogicEnergyModel,
        SystemEnergyModel, SystemEnergyReport,
    };
    pub use crate::layout::{bank_words, bias_offset, flatten, unflatten, weight_offset};
    pub use crate::npe::{decode_activation, encode_activation, Npe};
    pub use crate::timing::DelayModel;
}
