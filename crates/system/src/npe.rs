//! Neural Processing Element: the fixed-point MAC datapath of paper Fig. 2.
//!
//! One NPE "mimics the computations of the artificial neurons": it
//! accumulates products of 8-bit weights (two's-complement fixed point, the
//! synaptic memory's format) and 8-bit unsigned activations, then applies a
//! sigmoid through a 256-entry lookup table — a standard digital ASIC
//! realization of the sigmoid neuron.
//!
//! Activations use U0.8 (codes 0-255 spanning `[0, 1)`), matching the
//! sigmoid's output range.

use neural::network::sigmoid;
use neural::quant::FixedPointFormat;

/// Number of sigmoid LUT entries.
const LUT_SIZE: usize = 256;
/// The LUT covers pre-activations in `[-LUT_RANGE, +LUT_RANGE)`.
const LUT_RANGE: f32 = 8.0;

/// Fused 8-lane multiply-accumulate over weight and activation codes.
/// Integer addition is associative, so the lane restructure is
/// bit-identical to a scalar left fold while letting the compiler keep
/// eight independent accumulator chains in flight.
fn mac(weights: &[u8], activations: &[u8]) -> i64 {
    let mut lanes = [0i64; 8];
    let mut w_chunks = weights.chunks_exact(8);
    let mut a_chunks = activations.chunks_exact(8);
    for (w, a) in (&mut w_chunks).zip(&mut a_chunks) {
        for ((lane, &wi), &ai) in lanes.iter_mut().zip(w).zip(a) {
            *lane += (wi as i8) as i64 * ai as i64;
        }
    }
    let mut acc: i64 = lanes.iter().sum();
    for (&w, &a) in w_chunks.remainder().iter().zip(a_chunks.remainder()) {
        acc += (w as i8) as i64 * a as i64;
    }
    acc
}

/// Quantizes an activation in `[0, 1]` to its U0.8 code.
pub fn encode_activation(a: f32) -> u8 {
    (a.clamp(0.0, 1.0) * 255.0).round() as u8
}

/// Decodes a U0.8 activation code.
pub fn decode_activation(code: u8) -> f32 {
    code as f32 / 255.0
}

/// A fixed-point neural processing element.
#[derive(Debug, Clone, PartialEq)]
pub struct Npe {
    format: FixedPointFormat,
    lut: Vec<u8>,
}

impl Npe {
    /// Builds an NPE for weights in the given fixed-point format.
    pub fn new(format: FixedPointFormat) -> Self {
        let lut = (0..LUT_SIZE)
            .map(|i| {
                let z = -LUT_RANGE + 2.0 * LUT_RANGE * i as f32 / LUT_SIZE as f32;
                encode_activation(sigmoid(z))
            })
            .collect();
        Self { format, lut }
    }

    /// The weight format this NPE is configured for.
    pub fn format(&self) -> FixedPointFormat {
        self.format
    }

    /// Sigmoid lookup on a float pre-activation (saturates beyond the LUT
    /// range, as the hardware table would).
    pub fn sigmoid_lut(&self, z: f32) -> u8 {
        if !z.is_finite() {
            return if z > 0.0 { 255 } else { 0 };
        }
        let idx = ((z + LUT_RANGE) / (2.0 * LUT_RANGE) * LUT_SIZE as f32).floor();
        let idx = idx.clamp(0.0, (LUT_SIZE - 1) as f32) as usize;
        self.lut[idx]
    }

    /// Computes one neuron: MAC over weight codes and activation codes plus
    /// a bias code, then the sigmoid LUT.
    ///
    /// The accumulator is `i64` — wide enough for the paper's largest layer
    /// (1000 inputs × max |product| 2^15) with no overflow.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != activations.len()`.
    pub fn neuron(&self, weights: &[u8], bias: u8, activations: &[u8]) -> u8 {
        assert_eq!(
            weights.len(),
            activations.len(),
            "weight/activation fan-in mismatch"
        );
        // Bias enters at full activation (a = 1.0 -> code 255).
        let acc = mac(weights, activations) + (bias as i8) as i64 * 255;
        // Scale: weight lsb / 255 per product unit.
        let z = acc as f32 * self.format.lsb() / 255.0;
        self.sigmoid_lut(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::quant::Encoding;

    fn npe() -> Npe {
        Npe::new(FixedPointFormat::new(1, Encoding::TwosComplement))
    }

    #[test]
    fn activation_codec_round_trip() {
        for a in [0.0f32, 0.25, 0.5, 0.75, 1.0] {
            let code = encode_activation(a);
            assert!((decode_activation(code) - a).abs() < 1.0 / 255.0 + 1e-6);
        }
        assert_eq!(encode_activation(-0.5), 0);
        assert_eq!(encode_activation(1.5), 255);
    }

    #[test]
    fn lut_matches_float_sigmoid() {
        let n = npe();
        for z in [-6.0f32, -2.0, -0.5, 0.0, 0.5, 2.0, 6.0] {
            let got = decode_activation(n.sigmoid_lut(z));
            let want = sigmoid(z);
            assert!(
                (got - want).abs() < 0.03,
                "sigmoid LUT at {z}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn lut_saturates() {
        let n = npe();
        assert_eq!(n.sigmoid_lut(100.0), 255);
        assert_eq!(n.sigmoid_lut(-100.0), 0);
        assert_eq!(n.sigmoid_lut(f32::INFINITY), 255);
        assert_eq!(n.sigmoid_lut(f32::NEG_INFINITY), 0);
    }

    #[test]
    fn neuron_matches_float_reference() {
        let n = npe();
        let fmt = n.format();
        // Weights 0.5 and -0.25, bias 0.125, activations 1.0 and 0.5.
        let weights = vec![fmt.encode(0.5), fmt.encode(-0.25)];
        let bias = fmt.encode(0.125);
        let acts = vec![encode_activation(1.0), encode_activation(0.5)];
        let out = decode_activation(n.neuron(&weights, bias, &acts));
        let expected = sigmoid(0.5 * 1.0 - 0.25 * 0.5 + 0.125);
        assert!(
            (out - expected).abs() < 0.03,
            "npe {out} vs float {expected}"
        );
    }

    #[test]
    fn zero_weights_give_midpoint() {
        let n = npe();
        let out = n.neuron(&[0, 0, 0], 0, &[255, 255, 255]);
        assert!((decode_activation(out) - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "fan-in mismatch")]
    fn fan_in_mismatch_panics() {
        let n = npe();
        let _ = n.neuron(&[0, 0], 0, &[0]);
    }

    #[test]
    fn lane_mac_matches_the_scalar_fold() {
        // The 8-lane restructure must be bit-identical to the scalar left
        // fold at every length, including ragged remainders.
        for len in [0usize, 1, 7, 8, 9, 16, 23, 784] {
            let weights: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let acts: Vec<u8> = (0..len).map(|i| (i * 101 + 3) as u8).collect();
            let scalar: i64 = weights
                .iter()
                .zip(&acts)
                .map(|(&w, &a)| (w as i8) as i64 * a as i64)
                .sum();
            assert_eq!(mac(&weights, &acts), scalar, "fan-in {len}");
        }
    }
}
