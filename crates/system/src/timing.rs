//! Voltage-frequency scaling of the digital logic.
//!
//! The paper's enabling assumption (§I, §III): "the digital logic comprising
//! the neural processing elements and the associated controllers could be
//! operated reliably at scaled voltages by clocking them at a lower
//! frequency." This module quantifies *how much* lower with the standard
//! alpha-power-law delay model (Sakurai-Newton): gate delay
//! `t_d ∝ VDD / (VDD − VT)^α`, with `α ≈ 1.3` for a velocity-saturated
//! deeply scaled process.
//!
//! Two things follow from the model and feed the system-energy experiment:
//! the inference *time* grows as the supply is scaled (which multiplies
//! leakage energy), and the clock that the synaptic memory must serve drops
//! (which is what makes the self-clocked power convention meaningful).

use sram_device::units::{Second, Volt};

/// Alpha-power-law delay model for the NPE/controller logic.
///
/// # Examples
///
/// ```
/// use neuro_system::timing::DelayModel;
/// use sram_device::units::Volt;
///
/// let model = DelayModel::default();
/// let slow = model.cycle_time(Volt::new(0.65));
/// let fast = model.cycle_time(Volt::new(0.95));
/// assert!(slow.seconds() > fast.seconds());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    /// Logic threshold voltage (delay diverges as VDD approaches it).
    pub vt: Volt,
    /// Velocity-saturation exponent α (2 = classic long-channel, ~1.3 at
    /// deeply scaled nodes).
    pub alpha: f64,
    /// Clock period at the nominal supply.
    pub t_clk_nominal: Second,
    /// The nominal supply itself.
    pub vdd_nominal: Volt,
}

impl Default for DelayModel {
    fn default() -> Self {
        Self {
            vt: Volt::new(0.35),
            alpha: 1.3,
            // 1 GHz at 0.95 V — a plausible NPE pipeline in 22 nm.
            t_clk_nominal: Second::new(1e-9),
            vdd_nominal: Volt::new(0.95),
        }
    }
}

impl DelayModel {
    /// Relative delay factor at `vdd` versus the nominal supply.
    ///
    /// # Panics
    ///
    /// Panics unless `vdd > vt` (logic does not function below threshold in
    /// this model).
    pub fn slowdown(&self, vdd: Volt) -> f64 {
        assert!(
            vdd.volts() > self.vt.volts(),
            "vdd {vdd} must exceed the logic threshold {vt}",
            vdd = vdd,
            vt = self.vt
        );
        let delay = |v: f64| v / (v - self.vt.volts()).powf(self.alpha);
        delay(vdd.volts()) / delay(self.vdd_nominal.volts())
    }

    /// Clock period at a scaled supply.
    ///
    /// # Panics
    ///
    /// Panics unless `vdd > vt`.
    pub fn cycle_time(&self, vdd: Volt) -> Second {
        self.t_clk_nominal * self.slowdown(vdd)
    }

    /// Maximum clock frequency in hertz at a scaled supply.
    ///
    /// # Panics
    ///
    /// Panics unless `vdd > vt`.
    pub fn max_frequency(&self, vdd: Volt) -> f64 {
        1.0 / self.cycle_time(vdd).seconds()
    }

    /// Wall time of `cycles` clock cycles at `vdd`.
    ///
    /// # Panics
    ///
    /// Panics unless `vdd > vt`.
    pub fn elapsed(&self, vdd: Volt, cycles: u64) -> Second {
        self.cycle_time(vdd) * cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_point_is_unity() {
        let m = DelayModel::default();
        assert!((m.slowdown(Volt::new(0.95)) - 1.0).abs() < 1e-12);
        assert!((m.max_frequency(Volt::new(0.95)) - 1e9).abs() < 1.0);
    }

    #[test]
    fn delay_grows_monotonically_as_vdd_drops() {
        let m = DelayModel::default();
        let mut last = 0.0;
        for mv in [950, 900, 850, 800, 750, 700, 650, 600] {
            let s = m.slowdown(Volt::from_millivolts(mv as f64));
            assert!(s >= last, "slowdown must grow as VDD falls");
            last = s;
        }
    }

    #[test]
    fn paper_window_slowdown_is_moderate() {
        // Scaling 0.95 → 0.65 V slows a 22 nm pipeline by roughly 2×, not
        // 10× — the regime where voltage scaling is an energy win.
        let m = DelayModel::default();
        let s = m.slowdown(Volt::new(0.65));
        assert!(
            (1.5..4.0).contains(&s),
            "0.65 V slowdown should be a small multiple, got {s}"
        );
    }

    #[test]
    fn delay_diverges_near_threshold() {
        let m = DelayModel::default();
        assert!(m.slowdown(Volt::new(0.37)) > 20.0);
    }

    #[test]
    fn elapsed_scales_with_cycles() {
        let m = DelayModel::default();
        let one = m.elapsed(Volt::new(0.75), 1).seconds();
        let many = m.elapsed(Volt::new(0.75), 1000).seconds();
        assert!((many / one - 1000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must exceed the logic threshold")]
    fn below_threshold_panics() {
        let _ = DelayModel::default().cycle_time(Volt::new(0.3));
    }
}
