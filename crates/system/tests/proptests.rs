//! Property-based tests for the system datapath.

use neural::network::sigmoid;
use neural::quant::{Encoding, FixedPointFormat};
use neuro_system::npe::{decode_activation, encode_activation, Npe};
use proptest::prelude::*;

proptest! {
    /// Activation codec error is bounded by one code step.
    #[test]
    fn activation_codec_error_bounded(a in 0.0f32..=1.0) {
        let rec = decode_activation(encode_activation(a));
        prop_assert!((rec - a).abs() <= 1.0 / 255.0 + 1e-6);
    }

    /// The sigmoid LUT tracks the float sigmoid within quantization error.
    #[test]
    fn lut_tracks_sigmoid(z in -7.5f32..7.5) {
        let npe = Npe::new(FixedPointFormat::new(1, Encoding::TwosComplement));
        let got = decode_activation(npe.sigmoid_lut(z));
        prop_assert!((got - sigmoid(z)).abs() < 0.04, "z={z}: {got} vs {}", sigmoid(z));
    }

    /// The NPE neuron matches the float reference for random small neurons.
    #[test]
    fn neuron_matches_float(
        weights in prop::collection::vec(-1.5f32..1.5, 1..24),
        bias in -1.0f32..1.0,
        seed in 0u64..100,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let acts: Vec<f32> = (0..weights.len()).map(|_| rng.gen_range(0.0..1.0)).collect();

        let fmt = FixedPointFormat::new(1, Encoding::TwosComplement);
        let npe = Npe::new(fmt);
        let w_codes: Vec<u8> = weights.iter().map(|&w| fmt.encode(w)).collect();
        let a_codes: Vec<u8> = acts.iter().map(|&a| encode_activation(a)).collect();
        let got = decode_activation(npe.neuron(&w_codes, fmt.encode(bias), &a_codes));

        // Float reference using the *quantized* weights (the datapath cannot
        // beat its own storage precision).
        let z: f32 = w_codes
            .iter()
            .zip(&acts)
            .map(|(&c, &a)| fmt.decode(c) * a)
            .sum::<f32>()
            + fmt.decode(fmt.encode(bias));
        let want = sigmoid(z);
        // Error budget: activation quantization (~1/255 per term, grows with
        // fan-in) plus the LUT step.
        let budget = 0.05 + 0.002 * weights.len() as f32;
        prop_assert!((got - want).abs() < budget, "{got} vs {want} (fan-in {})", weights.len());
    }
}
