//! ECC versus significance-driven protection.
//!
//! Protecting MSBs in 8T cells is one way to survive voltage scaling; the
//! textbook alternative wraps every 8-bit weight in a SECDED(13,8) Hamming
//! code and keeps all cells 6T. This example pits them against each other
//! at the paper's aggressive 0.65 V operating point, then pushes the
//! per-bit failure rate up to show where each scheme breaks.
//!
//! Run with: `cargo run --release --example ecc_comparison`

use hybrid_sram::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sram_ecc::prelude::*;

fn main() {
    println!("== SECDED ECC vs hybrid 8T-6T protection ==\n");
    println!("characterizing bitcells and training a small MLP...");
    let ctx = ExperimentContext::quick();

    // The full head-to-head at 0.65 V (accuracy, power, area).
    println!("\n{}\n", ecc::run(&ctx));

    // Mechanism view: how the SECDED channel degrades as the 6T per-bit
    // failure probability climbs past the single-error regime.
    let code = SecdedCode::for_weights().expect("8-bit weights are supported");
    let mut table = TableBuilder::new(vec![
        "p(bit flip)",
        "exact words",
        "corrected",
        "detected",
        "silently wrong",
    ]);
    let mut rng = StdRng::seed_from_u64(0xECC);
    for p in [1e-4, 1e-3, 1e-2, 5e-2, 1e-1] {
        let channel = EccChannel::new(code, p).expect("p is a probability");
        let stats = channel.run(20_000, &mut rng);
        table.row(vec![
            format!("{p:.0e}"),
            fmt_pct(stats.exact_fraction()),
            format!("{}", stats.corrected),
            format!("{}", stats.detected),
            format!("{}", stats.silently_wrong),
        ]);
    }
    println!("SECDED(13,8) channel behaviour (20k words per row):");
    println!("{}", table.finish());
    println!(
        "Below ~1e-3 the code corrects essentially everything; past ~1e-2\n\
         multi-bit words multiply and correction collapses — while the hybrid\n\
         array's MSB protection degrades gracefully (LSB noise only). Combined\n\
         with 62.5 % extra 6T cells per word versus 13.9 % area for 3 protected\n\
         MSBs, ECC is the wrong tool for parametric voltage-scaling failures."
    );
}
