//! Significance-driven hybrid sweep (paper Fig. 8): how many MSBs must live
//! in 8T cells to make 0.65 V safe, and what does each choice cost?
//!
//! Run with: `cargo run --release --example hybrid_sweep`

use hybrid_sram::prelude::*;

fn main() {
    println!("== Hybrid 8T-6T configuration sweep (paper Fig. 8) ==\n");
    let ctx = ExperimentContext::quick();

    let fig8 = fig8::run(&ctx);
    println!("{fig8}");

    // The paper's reading of this table: "protecting three or four MSBs in
    // 8T bitcells is sufficient to achieve close to nominal accuracy", for
    // ~29 % power reduction at a 13.75 % area penalty with three MSBs.
    let three = &fig8.rows[2];
    println!(
        "(3,5) design point: accuracy {} @ 0.65 V, access power ↓ {}, area ↑ {}",
        fmt_pct(three.accuracy_065),
        fmt_pct(three.access_reduction),
        fmt_pct(three.area_overhead),
    );
}
