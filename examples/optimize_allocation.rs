//! Deriving the per-bank MSB allocation automatically.
//!
//! The paper picks Configuration 2's protection levels from architectural
//! intuition. This example lets the greedy optimizer derive an allocation
//! from accuracy measurements alone, under two loss budgets mirroring the
//! paper's < 1 % and < 4 % design points, and prints the trajectory so the
//! "protect the classifier fan-in first" structure is visible.
//!
//! Run with: `cargo run --release --example optimize_allocation`

use hybrid_sram::prelude::*;
use sram_device::units::Volt;

fn main() {
    println!("== Greedy per-bank MSB allocation @ 0.65 V ==\n");
    println!("characterizing bitcells and training a small MLP...");
    let ctx = ExperimentContext::quick();
    let vdd = Volt::new(0.65);
    println!(
        "banks (words per ANN layer fan-out): {:?}\n",
        neuro_system::layout::bank_words(&ctx.network)
    );

    for max_loss in [0.01, 0.04] {
        let result = optimize_allocation(
            &ctx.framework,
            &ctx.network,
            &ctx.test,
            vdd,
            &OptimizerOptions {
                max_loss,
                trials: 3,
                seed: 0xA110C,
                max_msb: 8,
            },
        );
        println!(
            "loss budget {:.0} % -> allocation {:?}",
            100.0 * max_loss,
            result.msb_8t
        );
        println!(
            "  accuracy {} (reference {}), area overhead {}, {} evaluations, met: {}",
            fmt_pct(result.accuracy.mean()),
            fmt_pct(result.reference_accuracy),
            fmt_pct(result.area_overhead),
            result.evaluations,
            result.meets_constraint,
        );
        for step in &result.steps {
            println!(
                "    +1 MSB on bank {} -> {:?} ({})",
                step.bank,
                step.msb_8t,
                fmt_pct(step.accuracy)
            );
        }
        println!();
    }

    println!(
        "A looser budget buys a leaner allocation — the same trade the paper\n\
         makes between its <1 % (30.91 % power, 10.41 % area) and <4 %\n\
         (+7.38 % power, −40.25 % area) design points, now derived instead of\n\
         hand-picked."
    );
}
