//! Quickstart: the whole pipeline in one page.
//!
//! Characterizes the 6T/8T bitcells, trains a small digit classifier, and
//! compares three synaptic-memory design points — all-6T at its safe
//! voltage, all-6T over-scaled, and the paper's hybrid 8T-6T at the same
//! aggressive voltage.
//!
//! Run with: `cargo run --release --example quickstart`

use hybrid_sram::prelude::*;
use sram_device::units::Volt;

fn main() {
    println!("== Significance-driven hybrid 8T-6T SRAM: quickstart ==\n");
    println!("characterizing 22 nm 6T/8T bitcells and training a small MLP...");
    let ctx = ExperimentContext::quick();

    println!(
        "network: {} synapses in {} weight layers; clean 8-bit accuracy {}\n",
        ctx.network.synapse_count(),
        ctx.network.layer_count(),
        fmt_pct(ctx.float_accuracy)
    );

    let designs = [
        (
            "all-6T @ 0.75 V (safe baseline)",
            MemoryConfig::Base6T {
                vdd: Volt::new(0.75),
            },
        ),
        (
            "all-6T @ 0.65 V (over-scaled)",
            MemoryConfig::Base6T {
                vdd: Volt::new(0.65),
            },
        ),
        (
            "hybrid (3,5) @ 0.65 V (paper Config 1)",
            MemoryConfig::Hybrid {
                msb_8t: 3,
                vdd: Volt::new(0.65),
            },
        ),
    ];

    let baseline = &designs[0].1;
    let p_base = ctx.framework.power_report(
        &ctx.network,
        baseline,
        sram_array::power::PowerConvention::IsoThroughput,
    );

    let mut table = TableBuilder::new(vec![
        "design",
        "accuracy",
        "access power vs baseline",
        "area overhead",
    ]);
    for (name, config) in &designs {
        let acc = ctx
            .framework
            .evaluate_accuracy(&ctx.network, &ctx.test, config, 3, 7)
            .mean();
        let power = ctx.framework.power_report(
            &ctx.network,
            config,
            sram_array::power::PowerConvention::IsoThroughput,
        );
        let rel = power.access_power.watts() / p_base.access_power.watts() - 1.0;
        table.row(vec![
            (*name).to_owned(),
            fmt_pct(acc),
            format!("{:+.1} %", rel * 100.0),
            fmt_pct(ctx.framework.area_overhead(&ctx.network, config)),
        ]);
    }
    println!("{}", table.finish());
    println!(
        "The hybrid design keeps the over-scaled voltage's power win while\n\
         restoring the accuracy the plain 6T memory loses there — the paper's\n\
         central result."
    );
}
