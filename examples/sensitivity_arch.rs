//! Synaptic-sensitivity-driven architecture (paper Fig. 9): measure which
//! layers' synapses actually matter, allocate 8T protection accordingly, and
//! compare the resulting banked memory against uniform protection.
//!
//! Run with: `cargo run --release --example sensitivity_arch`

use hybrid_sram::prelude::*;

fn main() {
    println!("== Sensitivity-driven hybrid architecture (paper Fig. 9) ==\n");
    let ctx = ExperimentContext::quick();

    // Measure per-bank sensitivity directly (the paper corroborates its
    // intuition the same way: inject errors, watch the classifier).
    let sens = analyze_layer_sensitivity(&ctx.network, &ctx.test, 0.02, 3, 99);
    println!("per-bank accuracy drop at 2% probe corruption:");
    for (bank, drop) in sens.drops.iter().enumerate() {
        println!("  bank {bank} (layer {bank} fan-out): {}", fmt_pct(*drop));
    }
    println!(
        "sensitivity ranking (most sensitive first): {:?}\n",
        sens.ranking()
    );

    // Paper §VI-C: border pixels carry no information, so the input layer's
    // fan-out tolerates corruption that would wreck center-pixel weights.
    let regions = analyze_input_regions(&ctx.network, &ctx.test, 0.25, 3, 2, 5);
    println!(
        "input-region probe at {}: border-pixel weight drop {}, center-pixel drop {}\n",
        fmt_pct(regions.probe_rate),
        fmt_pct(regions.border_drop),
        fmt_pct(regions.center_drop),
    );

    let fig9 = fig9::run(&ctx);
    println!("{fig9}");

    println!(
        "Paper headline for the Table I network: 30.91 % access-power reduction\n\
         at 10.41 % area overhead for < 1 % accuracy loss; the lean variant adds\n\
         7.38 % more power savings at 40.25 % lower area cost within < 4 % loss."
    );
}
