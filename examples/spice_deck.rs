//! Working with SPICE decks: parse, solve, export.
//!
//! The nanospice substrate that characterizes the paper's bitcells also
//! speaks the classic SPICE text format, so netlists can be exchanged with
//! external tools. This example parses an inverter deck, finds its switching
//! threshold with a DC sweep, and exports a programmatically built 6T-cell
//! half circuit back to deck text.
//!
//! Run with: `cargo run --release --example spice_deck`

use nanospice::prelude::*;
use sram_device::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::ptm_22nm();

    // Parse a CMOS inverter from deck text.
    let deck = parse_deck(
        "cmos inverter, 22 nm PTM
         VDD vdd 0 DC 0.95
         VIN in  0 DC 0.0
         M1  out in 0   nmos W=88n  L=22n
         M2  out in vdd pmos W=176n L=22n
         .end",
        &tech,
    )?;
    println!("parsed deck: {:?}", deck.title);

    // Sweep the input to locate the switching threshold (V_out = V_in).
    let mut ckt = deck.circuit.clone();
    let vin_vals: Vec<Volt> = (0..=95)
        .map(|i| Volt::from_millivolts(10.0 * i as f64))
        .collect();
    let out = ckt.find_node("out").expect("deck defines out");
    let sols = dc_sweep(&mut ckt, "VIN", &vin_vals, &NewtonOptions::default(), None)?;
    let vm = vin_vals
        .iter()
        .zip(&sols)
        .min_by(|a, b| {
            let da = (a.1.voltage(out).volts() - a.0.volts()).abs();
            let db = (b.1.voltage(out).volts() - b.0.volts()).abs();
            da.partial_cmp(&db).expect("finite voltages")
        })
        .map(|(v, _)| *v)
        .expect("non-empty sweep");
    println!("inverter switching threshold ≈ {vm} (mid-rail is 475 mV)");

    // Build one half of a 6T cell programmatically and export it.
    let nm = |w: f64| Mosfet::new(tech.nmos.clone(), Meter::from_nanometers(w), tech.lmin);
    let pm = |w: f64| Mosfet::new(tech.pmos.clone(), Meter::from_nanometers(w), tech.lmin);
    let mut cell = Circuit::new();
    let vdd = cell.node("vdd");
    let q = cell.node("q");
    let qb = cell.node("qb");
    let bl = cell.node("bl");
    let wl = cell.node("wl");
    cell.vsource("VDD", vdd, NodeId::GROUND, Volt::new(0.95))?;
    cell.vsource("VBL", bl, NodeId::GROUND, Volt::new(0.95))?;
    cell.vsource("VWL", wl, NodeId::GROUND, Volt::new(0.0))?;
    cell.transistor("MPD", qb, q, NodeId::GROUND, nm(88.0)?)?; // pull-down
    cell.transistor("MPU", qb, q, vdd, pm(66.0)?)?; // pull-up
    cell.transistor("MAX", wl, bl, q, nm(66.0)?)?; // access
    let text = write_deck(&cell, "6T half-cell, storage node q");
    println!("\nexported deck:\n{text}");

    // Round-trip sanity: the exported deck parses and solves identically.
    let back = parse_deck(&text, &tech)?;
    let op1 = DcSolver::new(&cell).guess(q, Volt::new(0.0)).solve()?;
    let op2 = DcSolver::new(&back.circuit)
        .guess(
            back.circuit.find_node("q").expect("q survives"),
            Volt::new(0.0),
        )
        .solve()?;
    let v1 = op1.voltage(q).volts();
    let v2 = op2
        .voltage(back.circuit.find_node("q").expect("q survives"))
        .volts();
    println!("storage node after round trip: {v1:.6} V vs {v2:.6} V");
    assert!(
        (v1 - v2).abs() < 1e-9,
        "round trip must preserve the solution"
    );
    Ok(())
}
