//! Full-system inference (paper Fig. 2): classify digits through the
//! behavioral neuromorphic ASIC — fixed-point NPEs, controller, and a
//! voltage-scaled synaptic memory where *every single weight read* can
//! fault. Also breaks down the energy per inference.
//!
//! Run with: `cargo run --release --example system_inference`

use hybrid_sram::prelude::*;
use neural::prelude::*;
use neuro_system::prelude::*;
use sram_array::power::PowerConvention;
use sram_device::units::{Second, Volt};

fn main() {
    println!("== Full-system inference through the behavioral ASIC ==\n");
    let ctx = ExperimentContext::quick();
    let test = ctx.test.take(60);

    let float_acc = accuracy(&ctx.network.to_mlp(), &test);
    println!(
        "reference (float datapath, perfect memory): {}",
        fmt_pct(float_acc)
    );

    for (name, config) in [
        (
            "6T @ 0.75 V",
            MemoryConfig::Base6T {
                vdd: Volt::new(0.75),
            },
        ),
        (
            "6T @ 0.65 V",
            MemoryConfig::Base6T {
                vdd: Volt::new(0.65),
            },
        ),
        (
            "hybrid (3,5) @ 0.65 V",
            MemoryConfig::Hybrid {
                msb_8t: 3,
                vdd: Volt::new(0.65),
            },
        ),
    ] {
        // Build the hardware: NPE + controller + faulty memory, then run
        // every test image through it, reading all weights per inference.
        let memory = ctx.framework.build_memory(&ctx.network, &config, 42);
        let npe = Npe::new(ctx.network.format);
        let system = NeuromorphicSystem::new(&ctx.network, memory, npe);
        let acc = system.accuracy(&test, 42);
        let reads = system.memory().counts().reads;

        let power =
            ctx.framework
                .power_report(&ctx.network, &config, PowerConvention::IsoThroughput);
        let energy = inference_energy(
            &power,
            ctx.network.synapse_count(),
            &LogicEnergyModel::default(),
            config.vdd(),
            Second::from_nanoseconds(50_000.0),
        );
        println!(
            "{name}: accuracy {} ({} weight reads), energy/inference {:.2} nJ \
             (memory share {})",
            fmt_pct(acc),
            reads,
            energy.total().joules() * 1e9,
            fmt_pct(energy.memory_fraction()),
        );
    }
    println!(
        "\nPer-access fault injection agrees with the snapshot methodology the\n\
         experiments use — see tests/per_access_vs_snapshot.rs."
    );
}
