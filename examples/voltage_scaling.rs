//! Voltage-scaling study (paper Figs. 5-7): how far can a plain 6T synaptic
//! memory be pushed before the classifier collapses?
//!
//! Prints the failure-rate curves, the per-cell power curves, the accuracy
//! cliff, and the iso-stability knee.
//!
//! Run with: `cargo run --release --example voltage_scaling`

use hybrid_sram::prelude::*;

fn main() {
    println!("== 6T voltage scaling (paper Figs. 5-7) ==\n");
    let ctx = ExperimentContext::quick();

    let fig5 = fig5::run(&ctx);
    println!("{fig5}");

    let fig6 = fig6::run(&ctx);
    println!("{fig6}");

    let fig7 = fig7::run(&ctx);
    println!("{fig7}");

    let result = find_iso_stability_baseline(
        &ctx.framework,
        &ctx.network,
        &ctx.test,
        &paper_vdd_grid(),
        0.005,
        ctx.trials,
        ctx.seed,
    );
    println!(
        "iso-stability baseline (max 0.5% loss): {:.2} V — the paper lands at 0.75 V\n\
         (200 mV below the 0.95 V nominal supply).",
        result.baseline_vdd.volts()
    );
}
