//! A second workload: synthetic vowel spectra.
//!
//! Everything in the paper is measured on digit images. This example runs
//! the full design flow on the formant-spectrum dataset instead — train,
//! quantize, evaluate under voltage-scaled storage — and then shows why the
//! input layer's famed error resilience does not transfer: spectra have no
//! empty borders.
//!
//! Run with: `cargo run --release --example vowel_workload`

use hybrid_sram::prelude::*;
use neural::prelude::*;
use sram_device::units::Volt;

fn main() {
    println!("== Vowel-spectrum workload on the hybrid memory ==\n");

    // Train a compact vowel classifier.
    let data = spectra::generate_default(1200, 0x70E1);
    let (train_set, test_set) = data.split(0.8, 5);
    let mut mlp = Mlp::new(&[spectra::SPECTRUM_BINS, 32, 16, spectra::NUM_CLASSES], 9);
    train(
        &mut mlp,
        &train_set,
        &TrainOptions {
            epochs: 25,
            learning_rate: 0.5,
            momentum: 0.5,
            batch_size: 16,
            lr_decay: 0.95,
            loss: Loss::CrossEntropy,
            ..TrainOptions::default()
        },
    );
    let network = QuantizedMlp::from_mlp(&mlp, Encoding::TwosComplement);
    println!(
        "vowel net: {} synapses, clean 8-bit accuracy {}",
        network.synapse_count(),
        fmt_pct(accuracy(&network.to_mlp(), &test_set))
    );
    let cm = confusion_matrix(&network.to_mlp(), &test_set);
    println!("macro F1: {:.3}\n", macro_f1(&cm));

    // Evaluate the same memory design points the quickstart uses.
    println!("characterizing bitcells...");
    let framework = Framework::new(
        &sram_device::process::Technology::ptm_22nm(),
        &sram_bitcell::characterize::CharacterizationOptions {
            vdds: paper_vdd_grid(),
            mc_samples: 60,
            ..sram_bitcell::characterize::CharacterizationOptions::quick()
        },
    );
    let mut table = TableBuilder::new(vec!["design", "accuracy"]);
    for (name, config) in [
        (
            "6T @ 0.75 V",
            MemoryConfig::Base6T {
                vdd: Volt::new(0.75),
            },
        ),
        (
            "6T @ 0.65 V",
            MemoryConfig::Base6T {
                vdd: Volt::new(0.65),
            },
        ),
        (
            "hybrid (3,5) @ 0.65 V",
            MemoryConfig::Hybrid {
                msb_8t: 3,
                vdd: Volt::new(0.65),
            },
        ),
    ] {
        let acc = framework
            .evaluate_accuracy(&network, &test_set, &config, 3, 0xF1)
            .mean();
        table.row(vec![name.to_owned(), fmt_pct(acc)]);
    }
    println!("{}", table.finish());

    // The workload-dependence headline: edge regions matter here.
    println!("{}", workload::run(0.20, 3, 0xF00D));
    println!(
        "\nDigit borders are empty, spectrum edges carry formants: the Fig. 9\n\
         per-bank allocation must be re-derived per workload (see the\n\
         optimize_allocation example), not hard-coded from MNIST intuition."
    );
}
