//! Minimal in-tree stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the slice of the criterion API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `throughput` / `finish`, [`Bencher::iter`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up, then
//! timed over enough iterations to fill a fixed measurement window, and the
//! mean time per iteration is printed as
//! `bench: <name> ... <time>/iter (<n> iters)`. There are no statistical
//! analyses, plots, or saved baselines — the numbers are for coarse
//! regression tracking in CHANGES.md and CI logs.
//!
//! Beyond the human-readable lines, every run appends its results to a
//! machine-readable **`BENCH.json`** (benchmark name → mean ns/iter) so the
//! performance trajectory can be tracked across PRs. The file merges across
//! the workspace's separate bench binaries; set `BENCH_JSON_PATH` to
//! relocate it (default: `BENCH.json` in the bench binary's working
//! directory, i.e. the package root under `cargo bench`).

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work attributed to one pass of a benchmark, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The shim times each
/// routine call individually, so the hint only exists for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Measurement settings shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Debug, Clone, Copy)]
struct Settings {
    /// Nominal sample count; scales the measurement window like
    /// criterion's `sample_size` (smaller = faster, noisier).
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl Settings {
    fn measurement_window(&self) -> Duration {
        // 100 samples (criterion's default) maps to ~300 ms of measurement.
        Duration::from_micros(3_000 * self.sample_size as u64)
    }
}

/// Times a single benchmark body.
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    per_iter_secs: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `body` repeatedly and records the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up: run for a tenth of the window to settle caches and
        // estimate per-iteration cost.
        let warmup = self.settings.measurement_window() / 10;
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(body());
            warm_iters += 1;
        }
        // Divide by the time actually spent: one iteration of a slow body
        // can overshoot the warm-up window many times over.
        let est = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let target = self.settings.measurement_window().as_secs_f64();
        let iters = ((target / est.max(1e-9)) as u64).clamp(1, 1_000_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.per_iter_secs = elapsed / iters as f64;
        self.iters = iters;
    }

    /// Like [`Bencher::iter`], but rebuilds the input with `setup` before
    /// every call and excludes that setup from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up and per-iteration estimate (setup excluded from timing).
        let warmup = self.settings.measurement_window() / 10;
        let mut warm_spent = Duration::ZERO;
        let mut warm_iters: u64 = 0;
        while warm_spent < warmup {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            warm_spent += start.elapsed();
            warm_iters += 1;
        }
        let est = warm_spent.as_secs_f64() / warm_iters.max(1) as f64;

        let target = self.settings.measurement_window().as_secs_f64();
        let iters = ((target / est.max(1e-9)) as u64).clamp(1, 1_000_000_000);
        let mut spent = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
        }
        self.per_iter_secs = spent.as_secs_f64() / iters as f64;
        self.iters = iters;
    }
}

/// Results of the current process's benchmarks, drained into `BENCH.json`
/// by [`write_bench_json`] (called from `criterion_main!`).
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Parses a previously emitted `BENCH.json` (the exact flat `{"name":
/// ns, ...}` shape [`write_bench_json`] produces — not a general JSON
/// parser). Public because `cargo xtask bench-diff` reads the same files;
/// a single owner keeps reader and writer in lockstep.
pub fn read_bench_json(path: &str) -> BTreeMap<String, f64> {
    let mut entries = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return entries;
    };
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((name, value)) = line.rsplit_once(':') else {
            continue;
        };
        let name = name.trim().trim_matches('"');
        if name.is_empty() {
            continue;
        }
        if let Ok(ns) = value.trim().parse::<f64>() {
            entries.insert(name.to_string(), ns);
        }
    }
    entries
}

/// Merges this run's results into the machine-readable `BENCH.json`
/// (benchmark name → mean ns/iter). Entries from other bench binaries are
/// preserved; re-run benchmarks are overwritten. The location is
/// overridable via `BENCH_JSON_PATH`.
pub fn write_bench_json() {
    let recorded = {
        let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
        results.clone()
    };
    if recorded.is_empty() {
        return;
    }
    let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| "BENCH.json".to_string());
    let mut entries = read_bench_json(&path);
    for (name, ns) in recorded {
        entries.insert(name, ns);
    }
    let mut out = String::from("{\n");
    let last = entries.len().saturating_sub(1);
    for (i, (name, ns)) in entries.iter().enumerate() {
        // Bench names are plain identifiers plus '/'; no JSON escaping
        // needed.
        out.push_str(&format!(
            "  \"{name}\": {ns:.1}{}\n",
            if i == last { "" } else { "," }
        ));
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("bench results written to {path}");
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn run_one(full_name: &str, settings: Settings, body: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        settings,
        per_iter_secs: 0.0,
        iters: 0,
    };
    body(&mut bencher);
    let mut line = format!(
        "bench: {full_name:<52} {:>12}/iter ({} iters)",
        format_time(bencher.per_iter_secs),
        bencher.iters,
    );
    if let Some(tp) = settings.throughput {
        let rate = match tp {
            Throughput::Bytes(b) => format!(
                "{:.1} MiB/s",
                b as f64 / bencher.per_iter_secs / (1 << 20) as f64
            ),
            Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / bencher.per_iter_secs),
        };
        line.push_str(&format!("  [{rate}]"));
    }
    println!("{line}");
    RESULTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((full_name.to_string(), bencher.per_iter_secs * 1e9));
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            settings: Settings {
                sample_size: 100,
                throughput: None,
            },
        }
    }
}

impl Criterion {
    /// Benchmarks `body` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut body: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.settings, &mut body);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings,
            _parent: self,
        }
    }
}

/// A named set of benchmarks with shared settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Scales the measurement window (criterion's `sample_size` knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Attributes per-iteration work so a rate is printed alongside time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    /// Benchmarks `body` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut body: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_one(&full, self.settings, &mut body);
        self
    }

    /// Ends the group (no-op beyond parity with criterion's API).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`; additionally
/// merges the run's results into `BENCH.json` (see [`write_bench_json`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_bench_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_round_trips() {
        let path = std::env::temp_dir().join("criterion_shim_bench_json_test.json");
        let path = path.to_str().expect("utf-8 temp path");
        let mut entries = BTreeMap::new();
        entries.insert("monte_carlo/mc_6t_100_samples".to_string(), 615_000_000.0);
        entries.insert("fig7".to_string(), 128_423_000.5);
        let mut out = String::from("{\n");
        let last = entries.len() - 1;
        for (i, (name, ns)) in entries.iter().enumerate() {
            out.push_str(&format!(
                "  \"{name}\": {ns:.1}{}\n",
                if i == last { "" } else { "," }
            ));
        }
        out.push_str("}\n");
        std::fs::write(path, out).expect("write temp file");
        let parsed = read_bench_json(path);
        std::fs::remove_file(path).ok();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn missing_file_parses_empty() {
        assert!(read_bench_json("/nonexistent/BENCH.json").is_empty());
    }
}
