//! Minimal in-tree stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the slice of the criterion API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `throughput` / `finish`, [`Bencher::iter`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up, then
//! timed over enough iterations to fill a fixed measurement window, and the
//! mean time per iteration is printed as
//! `bench: <name> ... <time>/iter (<n> iters)`. There are no statistical
//! analyses, plots, or saved baselines — the numbers are for coarse
//! regression tracking in CHANGES.md and CI logs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work attributed to one pass of a benchmark, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The shim times each
/// routine call individually, so the hint only exists for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Measurement settings shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Debug, Clone, Copy)]
struct Settings {
    /// Nominal sample count; scales the measurement window like
    /// criterion's `sample_size` (smaller = faster, noisier).
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl Settings {
    fn measurement_window(&self) -> Duration {
        // 100 samples (criterion's default) maps to ~300 ms of measurement.
        Duration::from_micros(3_000 * self.sample_size as u64)
    }
}

/// Times a single benchmark body.
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    per_iter_secs: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `body` repeatedly and records the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up: run for a tenth of the window to settle caches and
        // estimate per-iteration cost.
        let warmup = self.settings.measurement_window() / 10;
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(body());
            warm_iters += 1;
        }
        // Divide by the time actually spent: one iteration of a slow body
        // can overshoot the warm-up window many times over.
        let est = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let target = self.settings.measurement_window().as_secs_f64();
        let iters = ((target / est.max(1e-9)) as u64).clamp(1, 1_000_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.per_iter_secs = elapsed / iters as f64;
        self.iters = iters;
    }

    /// Like [`Bencher::iter`], but rebuilds the input with `setup` before
    /// every call and excludes that setup from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up and per-iteration estimate (setup excluded from timing).
        let warmup = self.settings.measurement_window() / 10;
        let mut warm_spent = Duration::ZERO;
        let mut warm_iters: u64 = 0;
        while warm_spent < warmup {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            warm_spent += start.elapsed();
            warm_iters += 1;
        }
        let est = warm_spent.as_secs_f64() / warm_iters.max(1) as f64;

        let target = self.settings.measurement_window().as_secs_f64();
        let iters = ((target / est.max(1e-9)) as u64).clamp(1, 1_000_000_000);
        let mut spent = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
        }
        self.per_iter_secs = spent.as_secs_f64() / iters as f64;
        self.iters = iters;
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn run_one(full_name: &str, settings: Settings, body: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        settings,
        per_iter_secs: 0.0,
        iters: 0,
    };
    body(&mut bencher);
    let mut line = format!(
        "bench: {full_name:<52} {:>12}/iter ({} iters)",
        format_time(bencher.per_iter_secs),
        bencher.iters,
    );
    if let Some(tp) = settings.throughput {
        let rate = match tp {
            Throughput::Bytes(b) => format!(
                "{:.1} MiB/s",
                b as f64 / bencher.per_iter_secs / (1 << 20) as f64
            ),
            Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / bencher.per_iter_secs),
        };
        line.push_str(&format!("  [{rate}]"));
    }
    println!("{line}");
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            settings: Settings {
                sample_size: 100,
                throughput: None,
            },
        }
    }
}

impl Criterion {
    /// Benchmarks `body` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut body: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.settings, &mut body);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings,
            _parent: self,
        }
    }
}

/// A named set of benchmarks with shared settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Scales the measurement window (criterion's `sample_size` knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Attributes per-iteration work so a rate is printed alongside time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    /// Benchmarks `body` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut body: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_one(&full, self.settings, &mut body);
        self
    }

    /// Ends the group (no-op beyond parity with criterion's API).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
