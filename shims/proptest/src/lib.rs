//! Minimal in-tree stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the slice of the proptest API its property tests use:
//! the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, range and [`Just`] strategies, [`any`], tuple strategies,
//! `prop_map` / `prop_flat_map`, and [`collection::vec`].
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! drawn from a fixed-seed deterministic RNG (reproducible CI), and there is
//! no shrinking — a failing case panics with the generated inputs available
//! via the assertion message. The number of cases per property defaults to
//! 48 and can be overridden with the `PROPTEST_CASES` environment variable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs (env-overridable).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Deterministic per-property RNG. The seed mixes the property name so
/// different properties explore different points.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of values (stand-in for `proptest::strategy::Strategy`;
/// no shrinking, so a strategy is just a sampler).
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (stand-in for
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy covering `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count range for [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty vec size range");
            Self {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// See [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    /// Lets `prop::collection::vec(...)` resolve, as with real proptest's
    /// prelude.
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that draws [`cases`] inputs from a
/// deterministic RNG and runs the body for each.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __proptest_rng = $crate::test_rng(stringify!($name));
            for __proptest_case in 0..$crate::cases() {
                let _ = __proptest_case;
                $(let $pat = $crate::Strategy::new_value(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current generated case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}
