//! Minimal in-tree stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API subset).
//!
//! The reproduction's build environment has no network access to a cargo
//! registry, so the workspace vendors the small slice of the `rand` API it
//! actually uses: [`rngs::StdRng`] (a seedable xoshiro256++ generator),
//! the [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`, the
//! [`SeedableRng::seed_from_u64`] constructor, and [`seq::SliceRandom`]'s
//! Fisher-Yates `shuffle`.
//!
//! The generator is deterministic for a given seed, which is all the
//! Monte Carlo and fault-injection layers require; it is NOT a
//! cryptographic RNG.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly "at large" by [`Rng::gen`]
/// (stand-in for `rand::distributions::Standard` sampling).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait UniformSample: Sized + Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range arguments accepted by [`Rng::gen_range`] (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T: UniformSample, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                // `span == 0` can only happen for the full u128 range, which
                // no workspace type reaches (widest is 64-bit).
                let offset = (rng.next_u64() as u128) % span;
                (lo_w + offset as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let u: $t = Standard::sample(rng);
                let v = lo + u * (hi - lo);
                // Guard against round-up to the open upper bound.
                if v >= hi && lo < hi {
                    lo.max(hi - (hi - lo) * <$t>::EPSILON)
                } else {
                    v
                }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 (the reference seeding procedure).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

pub mod seq {
    use super::{Rng, UniformSample};

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// In-place Fisher-Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i, true);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
            let n = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&n));
        }
    }

    #[test]
    fn gen_bool_rate_is_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 64-element shuffle should move something");
    }
}
