//! # sram-ann-repro
//!
//! Umbrella crate for the reproduction of *Significance Driven Hybrid 8T-6T
//! SRAM for Energy-Efficient Synaptic Storage in Artificial Neural Networks*
//! (Srinivasan, Wijesinghe, Sarwar, Jaiswal, Roy — DATE 2016).
//!
//! The implementation lives in the workspace crates, re-exported here:
//!
//! * [`exec`] — the deterministic parallel execution engine (scoped worker
//!   pool, per-task seed streams, characterization memo cache) every
//!   fan-out-shaped hot path runs on;
//! * [`device`] — 22 nm device models, units, threshold-voltage variation;
//! * [`spice`] — the `nanospice` DC/transient circuit solver and SPICE deck
//!   parser/writer;
//! * [`bitcell`] — 6T/8T characterization and Monte Carlo failure analysis;
//! * [`array`](mod@array) — sub-array/bank organization, power/area rollups
//!   (with optional periphery), redundancy repair, the behavioral
//!   fault-injecting memory (monolithic reference) and the sharded
//!   bank-parallel store;
//! * [`ecc`] — SECDED Hamming codes and overhead models (the ECC baseline);
//! * [`ann`] — the from-scratch MLP, datasets, quantization, evaluation;
//! * [`faults`] — bit-level fault models and protection policies;
//! * [`system`] — NPEs, controller, per-inference energy, voltage-frequency
//!   scaling;
//! * [`serve`] — the concurrent batched inference serving layer (admission
//!   queue, adaptive micro-batching, latency/energy metrics, per-shard
//!   drowsy voltage policy) with its `serve_bench` and `scale_bench`
//!   load generators;
//! * [`net`] — the network-facing tier: a std-only evented TCP server
//!   with a length-prefixed binary protocol, backpressure and SLO-aware
//!   admission, a multi-tenant model registry over one shared store, and
//!   the `net_bench` open-loop load generator;
//! * [`gen`] — the config-driven SRAM macro generator: a TOML spec front
//!   end that validates totally (typed errors, no panics) and emits a
//!   complete organization — layout, SPICE netlists, area/power rollups,
//!   memoized characterization, and a fault-injected inference smoke —
//!   with its `gen_report` design-space sweep binary;
//! * [`core`] — the paper's contribution: configurations, the
//!   circuit-to-system framework, the allocation optimizer, and every
//!   experiment (Table I, Figs. 5-9, plus the extension studies).
//!
//! See the `examples/` directory for runnable entry points and
//! `crates/bench` for the figure-regeneration harness.

pub use fault_inject as faults;
pub use hybrid_sram as core;
pub use nanospice as spice;
pub use neural as ann;
pub use neuro_system as system;
pub use sram_array as array;
pub use sram_bitcell as bitcell;
pub use sram_device as device;
pub use sram_ecc as ecc;
pub use sram_exec as exec;
pub use sram_gen as gen;
pub use sram_net as net;
pub use sram_serve as serve;
