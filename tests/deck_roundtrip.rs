//! Cross-crate integration: the bitcell netlist builders, the SPICE deck
//! writer/parser, and the DC solver must agree.
//!
//! Exports the programmatically built 6T-cell circuits to classic SPICE
//! deck text, re-parses them, and verifies that both representations solve
//! to the same operating point — the guarantee a user needs before shipping
//! a deck to an external SPICE for cross-validation.

use nanospice::prelude::*;
use sram_bitcell::netlists::{six_t_circuit, CellBias};
use sram_bitcell::topology::{SixTCell, SixTSizing};
use sram_device::prelude::*;

fn storage_nodes(ckt: &nanospice::circuit::Circuit) -> (NodeId, NodeId) {
    (
        ckt.find_node("q").expect("6T netlist names node q"),
        ckt.find_node("qb").expect("6T netlist names node qb"),
    )
}

/// Solves a 6T circuit seeded to the `q = 1` state.
fn solve_high(ckt: &nanospice::circuit::Circuit, vdd: Volt) -> (f64, f64) {
    let (q, qb) = storage_nodes(ckt);
    let op = DcSolver::new(ckt)
        .guess(q, vdd)
        .guess(qb, Volt::new(0.0))
        .solve()
        .expect("6T hold state converges");
    (op.voltage(q).volts(), op.voltage(qb).volts())
}

#[test]
fn six_t_hold_state_survives_deck_round_trip() {
    let tech = Technology::ptm_22nm();
    let cell = SixTCell::new(&tech, &SixTSizing::paper_baseline());
    for mv in [950.0, 750.0, 650.0] {
        let vdd = Volt::from_millivolts(mv);
        let original = six_t_circuit(&cell, CellBias::hold(vdd)).expect("valid 6T netlist");
        let deck = write_deck(&original, "6T hold");
        let parsed = parse_deck(&deck, &tech).expect("writer output must parse");

        assert_eq!(
            parsed.circuit.elements().len(),
            original.elements().len(),
            "element count preserved at {vdd}"
        );
        let (q1, qb1) = solve_high(&original, vdd);
        let (q2, qb2) = solve_high(&parsed.circuit, vdd);
        assert!(
            (q1 - q2).abs() < 1e-9 && (qb1 - qb2).abs() < 1e-9,
            "operating point diverged at {vdd}: ({q1}, {qb1}) vs ({q2}, {qb2})"
        );
        // And it is a genuine hold state.
        assert!(q1 > 0.9 * vdd.volts(), "q holds high at {vdd}");
        assert!(qb1 < 0.1 * vdd.volts(), "qb holds low at {vdd}");
    }
}

#[test]
fn read_bias_round_trip_preserves_disturb_level() {
    // The read-disturb voltage on the internal 0-node is the quantity SNM
    // analysis cares about; it must survive the text round trip exactly.
    let tech = Technology::ptm_22nm();
    let cell = SixTCell::new(&tech, &SixTSizing::paper_baseline());
    let vdd = Volt::new(0.75);
    let original = six_t_circuit(&cell, CellBias::read(vdd)).expect("valid 6T netlist");
    let deck = write_deck(&original, "6T read");
    let parsed = parse_deck(&deck, &tech).expect("writer output must parse");

    let (_, qb1) = solve_high(&original, vdd);
    let (_, qb2) = solve_high(&parsed.circuit, vdd);
    assert!(
        (qb1 - qb2).abs() < 1e-9,
        "read-disturb level diverged: {qb1} vs {qb2}"
    );
    // Reading lifts the low node above ground — the disturb mechanism.
    assert!(
        qb1 > 1e-3,
        "read access must disturb the low node ({qb1} V)"
    );
}

#[test]
fn monte_carlo_variation_is_not_lost_in_export() {
    // ΔVT shifts are baked into the exported device parameters? They are
    // not — the deck format carries W/L only, so a varied cell must NOT
    // round-trip silently. Verify the writer output re-parses to the
    // *nominal* cell, and that the two circuits disagree once variation is
    // applied: this documents the format's limits instead of hiding them.
    let tech = Technology::ptm_22nm();
    let mut varied = SixTCell::new(&tech, &SixTSizing::paper_baseline());
    let shift = Volt::from_millivolts(120.0);
    varied.apply_variation(&[shift, -shift, shift, -shift, shift, -shift]);
    let vdd = Volt::new(0.65);
    let original = six_t_circuit(&varied, CellBias::read(vdd)).expect("valid varied netlist");
    let deck = write_deck(&original, "6T varied");
    let parsed = parse_deck(&deck, &tech).expect("writer output must parse");

    let (_, qb_varied) = solve_high(&original, vdd);
    let (_, qb_nominal) = solve_high(&parsed.circuit, vdd);
    assert!(
        (qb_varied - qb_nominal).abs() > 1e-6,
        "a 120 mV VT shift must be visible in the disturb level \
         (varied {qb_varied}, re-parsed nominal {qb_nominal})"
    );
}
