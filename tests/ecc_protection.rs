//! Cross-crate integration: the ECC channel, the fault-injection models and
//! the protection policies must tell one consistent story about word
//! reliability.

use fault_inject::model::{BitErrorRates, WordFailureModel};
use fault_inject::protection::CellAssignment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sram_ecc::prelude::*;

/// Raw (unprotected) probability that an 8-bit word survives intact.
fn raw_word_survival(p: f64) -> f64 {
    (1.0 - p).powi(8)
}

#[test]
fn ecc_beats_raw_storage_across_the_relevant_rates() {
    let code = SecdedCode::for_weights().expect("8-bit code");
    for p in [1e-4, 1e-3, 1e-2] {
        let channel = EccChannel::new(code, p).expect("probability");
        let ecc_exact = channel.analytic_exact_probability();
        let raw_exact = raw_word_survival(p);
        assert!(
            ecc_exact > raw_exact,
            "at p={p}: ECC exact {ecc_exact} must beat raw {raw_exact}"
        );
    }
}

#[test]
fn ecc_advantage_collapses_at_saturated_rates() {
    // Past the multi-bit regime the 13-bit word collects errors faster than
    // the code corrects them; raw 8-bit storage is then *more* likely to be
    // exact. The analytic crossover sits near p ≈ 0.33 — this is why ECC
    // cannot rescue deep voltage scaling.
    let code = SecdedCode::for_weights().expect("8-bit code");
    let channel = EccChannel::new(code, 0.4).expect("probability");
    assert!(channel.analytic_exact_probability() < raw_word_survival(0.4));
    // And just below the crossover the ordering still favours ECC.
    let channel = EccChannel::new(code, 0.25).expect("probability");
    assert!(channel.analytic_exact_probability() > raw_word_survival(0.25));
}

#[test]
fn monte_carlo_agrees_with_fault_model_expectations() {
    // The fault-injection model predicts the expected flips per word; the
    // ECC channel sees the same Bernoulli process over 13 bits. Tie the two
    // substrates together numerically.
    let p = 5e-3;
    let rates = BitErrorRates {
        read_6t: p,
        write_6t: 0.0,
        read_8t: 0.0,
        write_8t: 0.0,
    };
    let model = WordFailureModel::new(&rates, &CellAssignment::all_6t());
    assert!((model.expected_flips_per_word() - 8.0 * p).abs() < 1e-12);

    let code = SecdedCode::for_weights().expect("8-bit code");
    let channel = EccChannel::new(code, p).expect("probability");
    let mut rng = StdRng::seed_from_u64(42);
    let trials = 60_000u64;
    let mut flips = 0u64;
    for _ in 0..trials {
        flips += u64::from(channel.transmit(0xA5, &mut rng).flipped_bits);
    }
    let mean_flips = flips as f64 / trials as f64;
    let expected = 13.0 * p;
    assert!(
        (mean_flips - expected).abs() < 0.15 * expected,
        "mean flips {mean_flips} vs expected {expected}"
    );
}

#[test]
fn msb_protection_and_ecc_are_complementary_regimes() {
    // MSB protection bounds the *magnitude* of surviving errors; ECC bounds
    // their *count*. Verify both claims in one place.
    //
    // Magnitude: with the top 3 bits protected, the worst single-bit flip
    // in a two's-complement word is 16 LSBs; unprotected it is 128.
    let assignment = CellAssignment::msb_protected(3);
    let worst_unprotected_bit = (0..8usize)
        .filter(|&b| !assignment.is_protected(b))
        .max()
        .expect("some bits are 6T");
    assert_eq!(worst_unprotected_bit, 4);
    assert_eq!(1u32 << worst_unprotected_bit, 16);

    // Count: a SECDED word with a single flip always decodes exactly.
    let code = SecdedCode::for_weights().expect("8-bit code");
    let word = code.encode(0x5A).expect("in range");
    for bit in 0..code.code_bits() {
        let decoded = code.decode(word ^ (1 << bit)).expect("in range");
        assert_eq!(decoded.data(), 0x5A, "bit {bit}");
    }
}
