//! End-to-end integration: the paper's headline trade-offs must hold across
//! the whole stack on a shared context — one characterization, one trained
//! network, every configuration compared on it.

use hybrid_sram::prelude::*;
use sram_array::power::PowerConvention;
use sram_device::units::Volt;
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(ExperimentContext::quick)
}

#[test]
fn headline_tradeoff_hybrid_beats_overscaled_6t() {
    let ctx = ctx();
    let vdd = Volt::new(0.65);
    let base = ctx
        .framework
        .evaluate_accuracy(
            &ctx.network,
            &ctx.test,
            &MemoryConfig::Base6T { vdd },
            ctx.trials,
            1,
        )
        .mean();
    let hybrid = ctx
        .framework
        .evaluate_accuracy(
            &ctx.network,
            &ctx.test,
            &MemoryConfig::Hybrid { msb_8t: 3, vdd },
            ctx.trials,
            1,
        )
        .mean();
    assert!(
        hybrid >= base,
        "hybrid protection must not lose to plain 6T at 0.65 V: {hybrid} vs {base}"
    );
}

#[test]
fn iso_stability_power_win_with_bounded_area() {
    let ctx = ctx();
    let baseline = MemoryConfig::Base6T {
        vdd: Volt::new(0.75),
    };
    let hybrid = MemoryConfig::Hybrid {
        msb_8t: 3,
        vdd: Volt::new(0.65),
    };
    let p_base =
        ctx.framework
            .power_report(&ctx.network, &baseline, PowerConvention::IsoThroughput);
    let p_hyb = ctx
        .framework
        .power_report(&ctx.network, &hybrid, PowerConvention::IsoThroughput);
    let access_saving = 1.0 - p_hyb.access_power.watts() / p_base.access_power.watts();
    let leak_saving = 1.0 - p_hyb.leakage_power.watts() / p_base.leakage_power.watts();
    // Paper: ≈ 29 % for (3,5); shape requirement: double-digit savings.
    assert!(
        access_saving > 0.05,
        "access saving too small: {access_saving}"
    );
    assert!(leak_saving > 0.0, "leakage saving negative: {leak_saving}");
    // Area overhead exactly n·37 %/8.
    let area = ctx.framework.area_overhead(&ctx.network, &hybrid);
    assert!((area - 0.13875).abs() < 1e-6, "area {area}");
}

#[test]
fn sensitivity_architecture_dominates_uniform_hybrid_on_area() {
    let ctx = ctx();
    let banks = ctx.network.layer_count();
    // Per-bank allocation averaging under 3 bits must undercut the uniform
    // 3-bit hybrid's area while keeping accuracy within noise.
    let mut alloc = vec![1usize; banks];
    alloc[0] = 2;
    if banks > 1 {
        alloc[banks - 1] = 4;
    }
    let sens_config = MemoryConfig::SensitivityDriven {
        msb_8t: alloc,
        vdd: Volt::new(0.65),
    };
    let uniform = MemoryConfig::Hybrid {
        msb_8t: 3,
        vdd: Volt::new(0.65),
    };
    let area_sens = ctx.framework.area_overhead(&ctx.network, &sens_config);
    let area_uniform = ctx.framework.area_overhead(&ctx.network, &uniform);
    assert!(
        area_sens < area_uniform,
        "banked allocation should be leaner: {area_sens} vs {area_uniform}"
    );

    let acc_sens = ctx
        .framework
        .evaluate_accuracy(&ctx.network, &ctx.test, &sens_config, ctx.trials, 3)
        .mean();
    let acc_uniform = ctx
        .framework
        .evaluate_accuracy(&ctx.network, &ctx.test, &uniform, ctx.trials, 3)
        .mean();
    assert!(
        acc_sens > acc_uniform - 0.08,
        "sensitivity config gave up too much accuracy: {acc_sens} vs {acc_uniform}"
    );
}

#[test]
fn experiments_run_and_print() {
    let ctx = ctx();
    let t1 = table1::run(ctx);
    let f5 = fig5::run(ctx);
    let f6 = fig6::run(ctx);
    assert!(!format!("{t1}").is_empty());
    assert!(f5.shape_holds());
    assert!(f6.read_ratio() > 1.0);
}

#[test]
fn quantization_claim_8_bits_is_enough() {
    let ctx = ctx();
    let t1 = table1::run(ctx);
    assert!(
        t1.quantization_loss() < 0.005 + 0.02,
        "8-bit loss {} should be small",
        t1.quantization_loss()
    );
}
