//! Ablation (DESIGN.md §5): per-access read-fault sampling through the full
//! behavioral system must statistically agree with the snapshot-corruption
//! shortcut the experiments use (and that the paper's functional simulator
//! used). If these diverge, every accuracy figure is suspect.

use hybrid_sram::config::MemoryConfig;
use hybrid_sram::framework::Framework;
use neural::dataset::synth;
use neural::network::Mlp;
use neural::quant::{Encoding, QuantizedMlp};
use neural::train::{train, TrainOptions};
use neuro_system::controller::NeuromorphicSystem;
use neuro_system::npe::Npe;
use sram_bitcell::characterize::CharacterizationOptions;
use sram_device::process::Technology;
use sram_device::units::Volt;

#[test]
fn per_access_and_snapshot_agree() {
    // Characterize at the voltages the comparison touches.
    let options = CharacterizationOptions {
        vdds: vec![Volt::new(0.95), Volt::new(0.75), Volt::new(0.65)],
        mc_samples: 60,
        ..CharacterizationOptions::quick()
    };
    let framework = Framework::new(&Technology::ptm_22nm(), &options);

    // A small but non-trivial classifier.
    let data = synth::generate_default(600, 5);
    let (train_set, test_set) = data.split(0.75, 9);
    let test_set = test_set.take(80);
    let mut mlp = Mlp::new(&[784, 32, 10], 3);
    train(
        &mut mlp,
        &train_set,
        &TrainOptions {
            epochs: 20,
            learning_rate: 1.5,
            momentum: 0.7,
            ..TrainOptions::default()
        },
    );
    let q = QuantizedMlp::from_mlp(&mlp, Encoding::TwosComplement);

    let config = MemoryConfig::Base6T {
        vdd: Volt::new(0.65),
    };

    // Snapshot methodology (what the experiments run).
    let snapshot_acc = framework
        .evaluate_accuracy(&q, &test_set, &config, 6, 21)
        .mean();

    // Per-access methodology: every weight read samples fresh faults.
    let mut per_access_sum = 0.0;
    let n_runs = 3;
    for run in 0..n_runs {
        let memory = framework.build_memory(&q, &config, 1000 + run);
        let system = NeuromorphicSystem::new(&q, memory, Npe::new(q.format));
        per_access_sum += system.accuracy(&test_set, 1000 + run);
    }
    let per_access_acc = per_access_sum / n_runs as f64;

    // The fixed-point datapath itself costs a little accuracy; compare both
    // to their own clean references to isolate the *fault* effect.
    let clean_snapshot = framework
        .evaluate_accuracy(
            &q,
            &test_set,
            &MemoryConfig::Base6T {
                vdd: Volt::new(0.95),
            },
            1,
            3,
        )
        .mean();
    let clean_per_access = {
        let memory = framework.build_memory(
            &q,
            &MemoryConfig::Base6T {
                vdd: Volt::new(0.95),
            },
            7,
        );
        let system = NeuromorphicSystem::new(&q, memory, Npe::new(q.format));
        system.accuracy(&test_set, 7)
    };

    let snapshot_drop = clean_snapshot - snapshot_acc;
    let per_access_drop = clean_per_access - per_access_acc;
    assert!(
        (snapshot_drop - per_access_drop).abs() < 0.10,
        "fault-induced accuracy drops disagree: snapshot {snapshot_drop:.3} vs per-access {per_access_drop:.3}"
    );
}
