//! CI smoke test: drives the paper pipeline end-to-end through the
//! light-weight `ExperimentContext::quick()` path — characterization,
//! training, quantization, and one fault-injected evaluation — so every CI
//! run exercises the circuit-to-system stack, not just per-crate unit tests.

use hybrid_sram::prelude::*;
use sram_device::units::Volt;

#[test]
fn quick_pipeline_end_to_end() {
    let ctx = ExperimentContext::quick();

    // The quick context must produce a sane trained network: clearly better
    // than the 10-class chance floor, with a populated held-out set.
    assert!(
        ctx.float_accuracy > 0.2,
        "quick training failed to beat chance: float accuracy {}",
        ctx.float_accuracy
    );
    assert!(!ctx.test.is_empty(), "held-out evaluation set is empty");
    assert!(
        ctx.network.synapse_count() > 0,
        "quantized network is empty"
    );

    // One fault-injected evaluation at the paper's nominal voltage: the
    // memory is healthy there, so accuracy must stay close to clean float.
    let nominal = Volt::new(0.95);
    let stats = ctx.framework.evaluate_accuracy(
        &ctx.network,
        &ctx.test,
        &MemoryConfig::Base6T { vdd: nominal },
        ctx.trials,
        1,
    );
    let mean = stats.mean();
    assert!(
        (0.0..=1.0).contains(&mean),
        "accuracy must be a probability, got {mean}"
    );
    assert!(
        mean > ctx.float_accuracy - 0.15,
        "nominal-voltage 6T accuracy collapsed: {mean} vs float {}",
        ctx.float_accuracy
    );
}
