//! Cross-crate validation: the fast semi-analytic bitcell solvers in
//! `sram-bitcell` must agree with the full `nanospice` Newton solver on the
//! same cell netlists. This is the evidence that the Monte Carlo fast path
//! computes the same physics the "SPICE level" would.

use nanospice::prelude::*;
use sram_bitcell::cell_ops::{qb_equilibrium, read_bump};
use sram_bitcell::topology::{SixTCell, SixTSizing};
use sram_device::prelude::*;

/// Builds the full 6T cell in nanospice with both bitlines and the wordline
/// driven by sources.
fn build_6t_circuit(cell: &SixTCell, vdd: f64, wl: f64, bl: f64, blb: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let n_vdd = ckt.node("vdd");
    let n_q = ckt.node("q");
    let n_qb = ckt.node("qb");
    let n_wl = ckt.node("wl");
    let n_bl = ckt.node("bl");
    let n_blb = ckt.node("blb");
    ckt.vsource("VDD", n_vdd, NodeId::GROUND, Volt::new(vdd))
        .expect("source");
    ckt.vsource("VWL", n_wl, NodeId::GROUND, Volt::new(wl))
        .expect("source");
    ckt.vsource("VBL", n_bl, NodeId::GROUND, Volt::new(bl))
        .expect("source");
    ckt.vsource("VBLB", n_blb, NodeId::GROUND, Volt::new(blb))
        .expect("source");
    // Q-side inverter: PU1 (gate=QB), PD1 (gate=QB); pass-gate PG1 BL<->Q.
    ckt.transistor("PU1", n_qb, n_q, n_vdd, cell.pu1.clone())
        .expect("device");
    ckt.transistor("PD1", n_qb, n_q, NodeId::GROUND, cell.pd1.clone())
        .expect("device");
    ckt.transistor("PG1", n_wl, n_bl, n_q, cell.pg1.clone())
        .expect("device");
    // QB side mirrors with gates on Q.
    ckt.transistor("PU2", n_q, n_qb, n_vdd, cell.pu2.clone())
        .expect("device");
    ckt.transistor("PD2", n_q, n_qb, NodeId::GROUND, cell.pd2.clone())
        .expect("device");
    ckt.transistor("PG2", n_wl, n_blb, n_qb, cell.pg2.clone())
        .expect("device");
    ckt
}

#[test]
fn hold_state_matches_nanospice() {
    let tech = Technology::ptm_22nm();
    let cell = SixTCell::new(&tech, &SixTSizing::paper_baseline());
    let vdd = 0.95;
    // Wordline off: the cell must hold Q=VDD / QB=0 when seeded there.
    let ckt = build_6t_circuit(&cell, vdd, 0.0, vdd, vdd);
    let q = ckt.find_node("q").expect("node");
    let qb = ckt.find_node("qb").expect("node");
    let op = DcSolver::new(&ckt)
        .guess(q, Volt::new(vdd))
        .guess(qb, Volt::new(0.0))
        .solve()
        .expect("hold state converges");
    assert!(op.voltage(q).volts() > 0.9 * vdd, "Q = {}", op.voltage(q));
    assert!(op.voltage(qb).volts() < 0.05, "QB = {}", op.voltage(qb));

    // The scalar fast path agrees: QB equilibrium for Q=vdd is ~0.
    let qb_fast = qb_equilibrium(&cell, vdd, vdd, vdd, None);
    assert!(
        (qb_fast - op.voltage(qb).volts()).abs() < 0.02,
        "fast {} vs spice {}",
        qb_fast,
        op.voltage(qb)
    );
}

#[test]
fn read_bump_matches_nanospice() {
    let tech = Technology::ptm_22nm();
    let cell = SixTCell::new(&tech, &SixTSizing::paper_baseline());
    let vdd = 0.95;
    // Read condition: wordline on, both bitlines precharged to VDD, cell
    // storing 0 on Q.
    let ckt = build_6t_circuit(&cell, vdd, vdd, vdd, vdd);
    let q = ckt.find_node("q").expect("node");
    let qb = ckt.find_node("qb").expect("node");
    let op = DcSolver::new(&ckt)
        .guess(q, Volt::new(0.1))
        .guess(qb, Volt::new(vdd))
        .solve()
        .expect("read state converges");

    let (q_fast, qb_fast) = read_bump(&cell, vdd);
    assert!(
        (q_fast - op.voltage(q).volts()).abs() < 0.02,
        "bump fast {} vs spice {}",
        q_fast,
        op.voltage(q)
    );
    assert!(
        (qb_fast - op.voltage(qb).volts()).abs() < 0.03,
        "high node fast {} vs spice {}",
        qb_fast,
        op.voltage(qb)
    );
}

#[test]
fn read_bump_tracks_variation_in_both_solvers() {
    let tech = Technology::ptm_22nm();
    let mut cell = SixTCell::new(&tech, &SixTSizing::paper_baseline());
    // Weak pull-down / strong pass-gate: a bigger disturb bump.
    cell.apply_variation(&[
        Volt::from_millivolts(60.0),
        Volt::from_millivolts(-60.0),
        Volt::new(0.0),
        Volt::new(0.0),
        Volt::new(0.0),
        Volt::new(0.0),
    ]);
    let vdd = 0.80;
    let ckt = build_6t_circuit(&cell, vdd, vdd, vdd, vdd);
    let q = ckt.find_node("q").expect("node");
    let op = DcSolver::new(&ckt)
        .guess(q, Volt::new(0.15))
        .guess(ckt.find_node("qb").expect("node"), Volt::new(vdd))
        .solve()
        .expect("read state converges");
    let (q_fast, _) = read_bump(&cell, vdd);
    assert!(
        (q_fast - op.voltage(q).volts()).abs() < 0.02,
        "fast {} vs spice {}",
        q_fast,
        op.voltage(q)
    );
}

#[test]
fn write_time_matches_nanospice_transient() {
    use nanospice::transient::{transient, TransientOptions};
    use sram_bitcell::netlists::{nodes, six_t_circuit, CellBias};
    use sram_bitcell::timing::{write_time, WRITE_WL_BOOST};

    let tech = Technology::ptm_22nm();
    let cell = SixTCell::new(&tech, &SixTSizing::paper_baseline());
    let vdd = Volt::new(0.95);

    // Quasi-static estimate.
    let t_fast = write_time(&cell, vdd).expect("nominal cell is writable");

    // Full transient: start from the hold state (Q = 1), then assert the
    // (boosted) wordline with BL grounded and watch Q collapse.
    let hold = six_t_circuit(&cell, CellBias::hold(vdd)).expect("netlist");
    let q = hold.find_node(nodes::Q).expect("node");
    let qb = hold.find_node(nodes::QB).expect("node");
    let op = DcSolver::new(&hold)
        .guess(q, vdd)
        .guess(qb, Volt::new(0.0))
        .solve()
        .expect("hold op");

    let mut write_ckt = six_t_circuit(&cell, CellBias::write_zero(vdd)).expect("netlist");
    write_ckt
        .set_vsource("VWL", Volt::new(vdd.volts() + WRITE_WL_BOOST.volts()))
        .expect("wordline boost");
    let options = TransientOptions::new(
        Second::new(t_fast.seconds() / 50.0),
        Second::new(t_fast.seconds() * 20.0),
    );
    let wave = transient(&write_ckt, &op, &options).expect("write transient");
    let t_spice = wave
        .crossing_time(q, Volt::new(0.1 * vdd.volts()), true)
        .expect("the cell must flip in the transient too");

    // The quasi-static model ignores the QB-side slewing, so agreement
    // within a factor of ~2.5 validates the Monte Carlo fast path.
    let ratio = t_fast.seconds() / t_spice.seconds();
    assert!(
        (0.4..2.5).contains(&ratio),
        "write time fast {} vs spice {} (ratio {ratio})",
        t_fast.seconds(),
        t_spice.seconds()
    );
}

#[test]
fn bitline_discharge_matches_nanospice_current() {
    use sram_bitcell::netlists::{nodes, six_t_circuit, CellBias};
    use sram_bitcell::timing::{read_access_time_6t, ColumnEnvironment};

    let tech = Technology::ptm_22nm();
    let cell = SixTCell::new(&tech, &SixTSizing::paper_baseline());
    let vdd = Volt::new(0.95);
    let env = ColumnEnvironment::rows_256();

    // Fast path: time to develop the sense margin on the bitline.
    let t_fast = read_access_time_6t(&cell, vdd, &env).expect("nominal read completes");

    // nanospice: solve the read condition and take the DC current the cell
    // draws from the bitline source; C·ΔV/I is the discharge-time estimate
    // the fast path should reproduce (the current is nearly constant over
    // the 100 mV sense window).
    let read_ckt = six_t_circuit(&cell, CellBias::read(vdd)).expect("netlist");
    let q = read_ckt.find_node(nodes::Q).expect("node");
    let qb = read_ckt.find_node(nodes::QB).expect("node");
    let op = DcSolver::new(&read_ckt)
        .guess(q, Volt::new(0.05))
        .guess(qb, vdd)
        .solve()
        .expect("read op");
    let i_dc = op
        .vsource_current(&read_ckt, "VBL")
        .expect("bitline current");
    let t_predicted = env.c_bitline.farads() * env.delta_v_sense.volts() / i_dc.amps().abs();

    let ratio = t_fast.seconds() / t_predicted;
    assert!(
        (0.5..2.0).contains(&ratio),
        "fast access {} vs C*dV/I {} (ratio {ratio})",
        t_fast.seconds(),
        t_predicted
    );
}
