//! Repository automation tasks, invoked as `cargo xtask <task>`.
//!
//! Currently one task:
//!
//! * **`bench-diff`** — runs the workspace benches into a scratch
//!   `BENCH.json` (via the shim-criterion `BENCH_JSON_PATH` hook), compares
//!   the fresh numbers against the committed `crates/bench/BENCH.json`, and
//!   prints per-bench deltas. Exits non-zero only when a *tier-tracked
//!   kernel* regresses by more than [`REGRESSION_FACTOR`]× — coarse enough
//!   to ignore shared-runner noise, tight enough to catch a solver falling
//!   back to brute force. `--no-run` skips the bench run and diffs an
//!   existing file (`--current <path>`).
//!
//! The committed baseline was recorded on a different machine than CI's
//! shared runners, so raw wall-clock ratios would gate hardware speed, not
//! code. Ratios are therefore normalized by the [`CALIBRATION`] kernel —
//! `mosfet_drain_current`, a pure scalar-FP microkernel untouched by
//! algorithmic changes — so a uniformly slower machine cancels out while a
//! kernel regressing *relative to the machine* still trips the gate.

use criterion::read_bench_json;
use std::path::PathBuf;
use std::process::{Command, ExitCode};

/// Committed baseline location, relative to the workspace root.
const BASELINE: &str = "crates/bench/BENCH.json";

/// Hot kernels whose regression fails CI. Everything else is reported but
/// informational (workload-dependent benches like the greedy optimizer move
/// when results shift within solver tolerance).
const TRACKED: &[&str] = &[
    "monte_carlo/mc_6t_100_samples",
    "read_access_time_6t",
    "read_access_time_8t",
    "write_margin",
    "write_time",
    "read_snm",
    "fig7/fig7_accuracy_vs_vdd",
    "fig8/fig8_hybrid_sweep",
];

/// A tracked kernel fails the diff when its machine-normalized ratio
/// exceeds this factor.
const REGRESSION_FACTOR: f64 = 2.0;

/// Machine-speed calibration kernel: ~50 ns of pure device-model floating
/// point, dominated by `exp`/`ln` throughput and untouched by solver
/// restructuring. The per-bench ratios are divided by this kernel's ratio
/// before the regression check.
const CALIBRATION: &str = "mosfet_drain_current";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench-diff") => bench_diff(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask bench-diff [--no-run] [--current <path>]");
            ExitCode::FAILURE
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn bench_diff(args: &[String]) -> ExitCode {
    let mut run = true;
    let mut current_path = "target/bench-current.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-run" => run = false,
            "--current" => match it.next() {
                Some(p) => current_path = p.clone(),
                None => {
                    eprintln!("--current requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown bench-diff argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Absolutize: the bench binaries run with their package root as working
    // directory, so a relative BENCH_JSON_PATH would land in crates/bench/.
    let current_path: PathBuf = match std::env::current_dir() {
        Ok(cwd) => cwd.join(&current_path),
        Err(_) => current_path.into(),
    };
    if run {
        // Start from a clean scratch file so stale entries never mask a
        // missing bench.
        let _ = std::fs::remove_file(&current_path);
        eprintln!(
            "running `cargo bench -p paper_bench` (BENCH_JSON_PATH={})...",
            current_path.display()
        );
        let status = Command::new(env!("CARGO"))
            .args(["bench", "-p", "paper_bench"])
            .env("BENCH_JSON_PATH", &current_path)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("cargo bench failed: {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("could not launch cargo bench: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let baseline = read_bench_json(BASELINE);
    let current = read_bench_json(&current_path.display().to_string());
    if baseline.is_empty() {
        eprintln!("no baseline at {BASELINE} (run from the workspace root)");
        return ExitCode::FAILURE;
    }
    if current.is_empty() {
        eprintln!("no fresh results at {}", current_path.display());
        return ExitCode::FAILURE;
    }

    // Machine-speed scale from the calibration microkernel; 1.0 (raw
    // ratios) when either side lacks it. Clamped so a corrupt calibration
    // sample cannot wave a real regression through.
    let machine_scale = match (baseline.get(CALIBRATION), current.get(CALIBRATION)) {
        (Some(&old_ns), Some(&new_ns)) if old_ns > 0.0 && new_ns > 0.0 => {
            (new_ns / old_ns).clamp(0.25, 4.0)
        }
        _ => {
            eprintln!("warning: calibration kernel `{CALIBRATION}` missing; using raw ratios");
            1.0
        }
    };
    println!("machine scale ({CALIBRATION}): {machine_scale:.2}x");

    println!(
        "{:<48} {:>12} {:>12} {:>9}  status",
        "benchmark", "baseline", "current", "ratio"
    );
    let mut regressions = Vec::new();
    for (name, &new_ns) in &current {
        let Some(&old_ns) = baseline.get(name) else {
            println!(
                "{name:<48} {:>12} {:>12} {:>9}  new",
                "-",
                format_ns(new_ns),
                "-"
            );
            continue;
        };
        // Normalized: how much slower this kernel got relative to how much
        // slower the machine itself is.
        let ratio = new_ns / old_ns / machine_scale;
        let tracked = TRACKED.contains(&name.as_str());
        let status = if tracked && ratio > REGRESSION_FACTOR {
            regressions.push((name.clone(), ratio));
            "REGRESSED"
        } else if tracked {
            "tracked"
        } else {
            ""
        };
        println!(
            "{name:<48} {:>12} {:>12} {:>8.2}x  {status}",
            format_ns(old_ns),
            format_ns(new_ns),
            ratio
        );
    }
    for name in baseline.keys() {
        if !current.contains_key(name) && TRACKED.contains(&name.as_str()) {
            regressions.push((name.clone(), f64::INFINITY));
            println!("{name:<48} (tracked kernel missing from fresh run)  REGRESSED");
        }
    }

    if regressions.is_empty() {
        println!("\nno tracked kernel regressed beyond {REGRESSION_FACTOR}x");
        ExitCode::SUCCESS
    } else {
        eprintln!("\ntracked kernels regressed beyond {REGRESSION_FACTOR}x:");
        for (name, ratio) in &regressions {
            eprintln!("  {name}: {ratio:.2}x");
        }
        ExitCode::FAILURE
    }
}
