//! Repository automation tasks, invoked as `cargo xtask <task>`.
//!
//! Two tasks:
//!
//! * **`bench-diff`** — runs the workspace benches into a scratch
//!   `BENCH.json` (via the shim-criterion `BENCH_JSON_PATH` hook), compares
//!   the fresh numbers against the committed `crates/bench/BENCH.json`, and
//!   prints per-bench deltas. Exits non-zero only when a *tier-tracked
//!   kernel* regresses by more than [`REGRESSION_FACTOR`]× — coarse enough
//!   to ignore shared-runner noise, tight enough to catch a solver falling
//!   back to brute force. `--no-run` skips the bench run and diffs an
//!   existing file (`--current <path>`).
//!
//! * **`serve-report`** — runs the `serve_bench` load generator at 1 and 4
//!   workers and emits a throughput/latency/energy comparison table
//!   (written to `--out`, default `target/serve-report.txt`). With
//!   `--gate`, exits non-zero when the two runs' predictions differ
//!   (determinism under load broken), when either run fails to emit a
//!   positive `words_per_sec` read-bandwidth figure, or when the 4-worker
//!   run is slower than the 1-worker run by more than
//!   [`SERVE_SLOWDOWN_FACTOR`]×;
//!   `--min-speedup X` additionally requires a genuine ≥X× speedup (used
//!   by CI, whose runners are known multi-core — a single-core dev box
//!   should gate without it). Both runs execute back-to-back in one job
//!   on one machine, so the ratio is machine-normalized by construction.
//!
//! * **`scale-report`** — runs the `scale_bench` million-synapse workload
//!   (one process, shard counts 1/2/4 back-to-back) and renders the shard
//!   scaling table (written to `--out`, default `target/scale-report.txt`).
//!   With `--gate`, exits non-zero when the per-shard-count digests differ
//!   (the sharded store diverged from the monolithic reference — a
//!   correctness failure, never acceptable) or when the widest shard
//!   count loads more than [`SERVE_SLOWDOWN_FACTOR`]× slower than one
//!   shard; `--min-speedup X` additionally requires a genuine ≥X× load
//!   speedup on known multi-core runners.
//!
//! * **`chaos-report`** — runs `serve_bench --chaos` (healthy / protected /
//!   unprotected over a seeded mid-load degradation schedule) at 1 and 4
//!   workers and renders the resilience comparison table (written to
//!   `--out`, default `target/chaos-report.txt`). With `--gate`, exits
//!   non-zero when any scenario's prediction digest or any resilience
//!   counter differs between the two worker counts, when the protected
//!   run's accuracy drops more than [`CHAOS_ACCURACY_DROP`] below healthy
//!   or its p99 exceeds [`CHAOS_P99_FACTOR`]× healthy, or when the
//!   *unprotected* run fails to violate the accuracy bound — the
//!   degradation must be strong enough that surviving it is evidence the
//!   scrub/repair loop works, not that the chaos was toothless.
//!
//! * **`net-report`** — spawns the `sram_net` evented TCP server via the
//!   `net_bench` open-loop load generator three times: twice at a
//!   sub-saturation arrival rate with different connection counts (the
//!   determinism probe) and once in burst mode with tight in-flight caps
//!   (the overload probe). Renders the arrival-rate/sojourn/shed table
//!   (written to `--out`, default `target/net-report.txt`). With
//!   `--gate`, exits non-zero when the two low-rate runs' response
//!   digests differ (determinism across connection interleavings is
//!   broken), when either low-rate run sheds, errors, or times out, when
//!   a low-rate run's client *or* server digest disagree (responses were
//!   lost or fabricated), when sojourn p99 exceeds `--slo-ms` (default
//!   [`NET_SLO_MS`]), or when the burst run fails to shed — overload
//!   must produce explicit `Overloaded` responses, not silence.
//!
//! * **`gen-report`** — runs the `sram_gen` design-space sweep
//!   (`gen_report`: every committed spec under `crates/gen/specs/`, a
//!   seeded random sample of the spec space, and the malformed corpus
//!   under `crates/gen/corpus/`) twice at different worker-thread counts
//!   and renders the per-spec digest table (written to `--out`, default
//!   `target/gen-report.txt`). With `--gate`, exits non-zero when any
//!   spec fails to build/characterize/smoke, when any digest differs
//!   across worker counts (sweep observables must be pure functions of
//!   the spec), when the generated `digits` layout stops matching the
//!   paper's hand-wired fixture, when any corpus file is *accepted*, or
//!   when fewer than the floor of random specs sweep cleanly.
//!
//! The committed baseline was recorded on a different machine than CI's
//! shared runners, so raw wall-clock ratios would gate hardware speed, not
//! code. Ratios are therefore normalized by the [`CALIBRATION`] kernel —
//! `mosfet_drain_current`, a pure scalar-FP microkernel untouched by
//! algorithmic changes — so a uniformly slower machine cancels out while a
//! kernel regressing *relative to the machine* still trips the gate.

use criterion::read_bench_json;
use std::path::PathBuf;
use std::process::{Command, ExitCode};

/// Committed baseline location, relative to the workspace root.
const BASELINE: &str = "crates/bench/BENCH.json";

/// Hot kernels whose regression fails CI. Everything else is reported but
/// informational (workload-dependent benches like the greedy optimizer move
/// when results shift within solver tolerance).
const TRACKED: &[&str] = &[
    "monte_carlo/mc_6t_100_samples",
    "rare/is_6t_tail",
    "rare/surrogate_6t_tail",
    "read_access_time_6t",
    "read_access_time_8t",
    "write_margin",
    "write_time",
    "read_snm",
    "fig7/fig7_accuracy_vs_vdd",
    "fig8/fig8_hybrid_sweep",
    "scale/load_1shard",
    "scale/load_2shard",
    "scale/load_4shard",
    "infer/forward_row_path",
    "serve/throughput_1w",
    "serve/throughput_4w",
    "serve/words_per_sec",
    "chaos/degraded_p99",
    "chaos/scrub_sweep",
    "net/conn_throughput",
    "net/open_loop_p99",
];

/// A tracked kernel fails the diff when its machine-normalized ratio
/// exceeds this factor.
const REGRESSION_FACTOR: f64 = 2.0;

/// Machine-speed calibration kernel: ~50 ns of pure device-model floating
/// point, dominated by `exp`/`ln` throughput and untouched by solver
/// restructuring. The per-bench ratios are divided by this kernel's ratio
/// before the regression check.
const CALIBRATION: &str = "mosfet_drain_current";

/// `serve-report --gate` fails when the 4-worker serve run takes more than
/// this factor of the 1-worker wall time (a 2-core CI runner may not reach
/// a 2× speedup, but 4 workers must never make serving meaningfully
/// *slower* than 1).
const SERVE_SLOWDOWN_FACTOR: f64 = 1.5;

/// `net-report --gate`'s default client-side sojourn p99 bound,
/// milliseconds, at the sub-saturation arrival rate. Sojourn is measured
/// from the *scheduled* open-loop arrival, so it includes every queueing
/// effect; the bound is deliberately loose against shared-runner noise —
/// it exists to catch the server falling off a latency cliff (seconds,
/// not milliseconds), and can be tightened per-run with `--slo-ms`.
const NET_SLO_MS: f64 = 250.0;

/// `chaos-report --gate` allows the protected run at most this absolute
/// accuracy drop below the healthy baseline — and requires the
/// *unprotected* run to exceed it, proving the injected degradation had
/// teeth.
const CHAOS_ACCURACY_DROP: f64 = 0.02;

/// `chaos-report --gate` allows the protected run's p99 latency at most
/// this factor of the healthy run's (scrub + repair overhead amortizes
/// across waves; a blowup here means maintenance is on the request path).
const CHAOS_P99_FACTOR: f64 = 2.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench-diff") => bench_diff(&args[1..]),
        Some("serve-report") => serve_report(&args[1..]),
        Some("scale-report") => scale_report(&args[1..]),
        Some("chaos-report") => chaos_report(&args[1..]),
        Some("net-report") => net_report(&args[1..]),
        Some("gen-report") => gen_report(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask bench-diff [--no-run] [--current <path>]");
            eprintln!(
                "       cargo xtask serve-report [--gate] [--min-speedup X] [--requests N] [--out <path>]"
            );
            eprintln!("       cargo xtask scale-report [--gate] [--min-speedup X] [--out <path>]");
            eprintln!("       cargo xtask chaos-report [--gate] [--requests N] [--out <path>]");
            eprintln!(
                "       cargo xtask net-report [--gate] [--requests N] [--rate R] [--slo-ms X] [--out <path>]"
            );
            eprintln!("       cargo xtask gen-report [--gate] [--random N] [--out <path>]");
            ExitCode::FAILURE
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn bench_diff(args: &[String]) -> ExitCode {
    let mut run = true;
    let mut current_path = "target/bench-current.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-run" => run = false,
            "--current" => match it.next() {
                Some(p) => current_path = p.clone(),
                None => {
                    eprintln!("--current requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown bench-diff argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Absolutize: the bench binaries run with their package root as working
    // directory, so a relative BENCH_JSON_PATH would land in crates/bench/.
    let current_path: PathBuf = match std::env::current_dir() {
        Ok(cwd) => cwd.join(&current_path),
        Err(_) => current_path.into(),
    };
    if run {
        // Start from a clean scratch file so stale entries never mask a
        // missing bench.
        let _ = std::fs::remove_file(&current_path);
        eprintln!(
            "running `cargo bench -p paper_bench` (BENCH_JSON_PATH={})...",
            current_path.display()
        );
        let status = Command::new(env!("CARGO"))
            .args(["bench", "-p", "paper_bench"])
            .env("BENCH_JSON_PATH", &current_path)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("cargo bench failed: {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("could not launch cargo bench: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let baseline = read_bench_json(BASELINE);
    let current = read_bench_json(&current_path.display().to_string());
    if baseline.is_empty() {
        eprintln!("no baseline at {BASELINE} (run from the workspace root)");
        return ExitCode::FAILURE;
    }
    if current.is_empty() {
        eprintln!("no fresh results at {}", current_path.display());
        return ExitCode::FAILURE;
    }

    // Machine-speed scale from the calibration microkernel; 1.0 (raw
    // ratios) when either side lacks it. Clamped so a corrupt calibration
    // sample cannot wave a real regression through.
    let machine_scale = match (baseline.get(CALIBRATION), current.get(CALIBRATION)) {
        (Some(&old_ns), Some(&new_ns)) if old_ns > 0.0 && new_ns > 0.0 => {
            (new_ns / old_ns).clamp(0.25, 4.0)
        }
        _ => {
            eprintln!("warning: calibration kernel `{CALIBRATION}` missing; using raw ratios");
            1.0
        }
    };
    println!("machine scale ({CALIBRATION}): {machine_scale:.2}x");

    println!(
        "{:<48} {:>12} {:>12} {:>9}  status",
        "benchmark", "baseline", "current", "ratio"
    );
    let mut regressions = Vec::new();
    for (name, &new_ns) in &current {
        let Some(&old_ns) = baseline.get(name) else {
            println!(
                "{name:<48} {:>12} {:>12} {:>9}  new",
                "-",
                format_ns(new_ns),
                "-"
            );
            continue;
        };
        // Normalized: how much slower this kernel got relative to how much
        // slower the machine itself is.
        let ratio = new_ns / old_ns / machine_scale;
        let tracked = TRACKED.contains(&name.as_str());
        let status = if tracked && ratio > REGRESSION_FACTOR {
            regressions.push((name.clone(), ratio));
            "REGRESSED"
        } else if tracked {
            "tracked"
        } else {
            ""
        };
        println!(
            "{name:<48} {:>12} {:>12} {:>8.2}x  {status}",
            format_ns(old_ns),
            format_ns(new_ns),
            ratio
        );
    }
    for name in baseline.keys() {
        if !current.contains_key(name) && TRACKED.contains(&name.as_str()) {
            regressions.push((name.clone(), f64::INFINITY));
            println!("{name:<48} (tracked kernel missing from fresh run)  REGRESSED");
        }
    }

    if regressions.is_empty() {
        println!("\nno tracked kernel regressed beyond {REGRESSION_FACTOR}x");
        ExitCode::SUCCESS
    } else {
        eprintln!("\ntracked kernels regressed beyond {REGRESSION_FACTOR}x:");
        for (name, ratio) in &regressions {
            eprintln!("  {name}: {ratio:.2}x");
        }
        ExitCode::FAILURE
    }
}

/// Parses a `key=value` report written by `serve_bench --report`.
fn read_kv_report(path: &std::path::Path) -> Option<std::collections::BTreeMap<String, String>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut map = std::collections::BTreeMap::new();
    for line in text.lines() {
        if let Some((k, v)) = line.split_once('=') {
            map.insert(k.trim().to_string(), v.trim().to_string());
        }
    }
    Some(map)
}

/// Shard counts `scale-report` asks `scale_bench` for (ascending; the
/// scaling gate compares the last against the first).
const SCALE_SHARDS: &[usize] = &[1, 2, 4];

fn scale_report(args: &[String]) -> ExitCode {
    let mut gate = false;
    let mut out_path = "target/scale-report.txt".to_string();
    let mut min_speedup: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gate" => gate = true,
            "--min-speedup" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(x) if x > 0.0 && x.is_finite() => min_speedup = Some(x),
                _ => {
                    eprintln!("--min-speedup requires a positive factor, e.g. 1.3");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown scale-report argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let cwd = std::env::current_dir().unwrap_or_default();
    let target = cwd.join("target");
    let _ = std::fs::create_dir_all(&target);
    let report_path = target.join("scale-bench.txt");
    let _ = std::fs::remove_file(&report_path);
    let shard_list = SCALE_SHARDS
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",");
    eprintln!("running scale_bench (shards {shard_list})...");
    let status = Command::new(env!("CARGO"))
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "sram_serve",
            "--bin",
            "scale_bench",
            "--",
            "--shards",
            &shard_list,
            "--report",
            &report_path.display().to_string(),
        ])
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("scale_bench failed: {s}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("could not launch scale_bench: {e}");
            return ExitCode::FAILURE;
        }
    }
    let Some(kv) = read_kv_report(&report_path) else {
        eprintln!("no report at {}", report_path.display());
        return ExitCode::FAILURE;
    };

    let get_ns = |key: &str| kv.get(key).and_then(|v| v.parse::<f64>().ok());
    let mut table = String::new();
    table.push_str(&format!(
        "scale-report — {} synaptic words through the sharded store ({} threads)\n\n",
        kv.get("words").map(String::as_str).unwrap_or("?"),
        kv.get("threads").map(String::as_str).unwrap_or("?"),
    ));
    table.push_str(&format!(
        "{:<8} {:>12} {:>12} {:>12}  digest\n",
        "shards", "load", "bulk read", "snapshot"
    ));
    for &shards in SCALE_SHARDS {
        table.push_str(&format!(
            "{shards:<8} {:>12} {:>12} {:>12}  {}\n",
            format_ns(get_ns(&format!("load_ns_{shards}")).unwrap_or(f64::NAN)),
            format_ns(get_ns(&format!("bulk_ns_{shards}")).unwrap_or(f64::NAN)),
            format_ns(get_ns(&format!("snapshot_ns_{shards}")).unwrap_or(f64::NAN)),
            kv.get(&format!("digest_{shards}"))
                .map(String::as_str)
                .unwrap_or("-"),
        ));
    }

    let first = SCALE_SHARDS[0];
    let last = SCALE_SHARDS[SCALE_SHARDS.len() - 1];
    let speedup = get_ns(&format!("load_ns_{first}")).unwrap_or(f64::NAN)
        / get_ns(&format!("load_ns_{last}")).unwrap_or(f64::NAN);
    let digests: Vec<Option<&String>> = SCALE_SHARDS
        .iter()
        .map(|s| kv.get(&format!("digest_{s}")))
        .collect();
    let identical = digests.iter().all(|d| d.is_some()) && digests.windows(2).all(|w| w[0] == w[1]);
    table.push_str(&format!(
        "\n{last}-shard load speedup: {speedup:.2}x\nimages across shard counts: {}\n",
        if identical { "IDENTICAL" } else { "DIVERGED" },
    ));

    print!("{table}");
    if let Err(e) = std::fs::write(&out_path, &table) {
        eprintln!("could not write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("scale report written to {out_path}");

    if gate {
        let mut failed = false;
        if !identical {
            eprintln!(
                "GATE FAILED: sharded images diverge across shard counts \
                 (the store is no longer bit-identical to the monolithic reference)"
            );
            failed = true;
        }
        if !(speedup.is_finite() && speedup > 0.0) {
            eprintln!("GATE FAILED: could not compute the {last}-shard load speedup");
            failed = true;
        } else if speedup < 1.0 / SERVE_SLOWDOWN_FACTOR {
            eprintln!(
                "GATE FAILED: {last} shards load {:.2}x slower than 1 shard \
                 (allowed: {SERVE_SLOWDOWN_FACTOR}x)",
                1.0 / speedup
            );
            failed = true;
        } else if let Some(floor) = min_speedup {
            if speedup < floor {
                eprintln!(
                    "GATE FAILED: {last}-shard load speedup {speedup:.2}x is below the \
                     required {floor:.2}x (--min-speedup)"
                );
                failed = true;
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!("scale gate passed: images identical, {last}-shard load speedup {speedup:.2}x");
    }
    ExitCode::SUCCESS
}

fn serve_report(args: &[String]) -> ExitCode {
    let mut gate = false;
    let mut requests = 512usize;
    let mut out_path = "target/serve-report.txt".to_string();
    let mut min_speedup: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gate" => gate = true,
            "--requests" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => requests = n,
                _ => {
                    eprintln!("--requests requires a positive count");
                    return ExitCode::FAILURE;
                }
            },
            "--min-speedup" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(x) if x > 0.0 && x.is_finite() => min_speedup = Some(x),
                _ => {
                    eprintln!("--min-speedup requires a positive factor, e.g. 1.4");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown serve-report argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let cwd = std::env::current_dir().unwrap_or_default();
    let target = cwd.join("target");
    let _ = std::fs::create_dir_all(&target);
    let worker_counts = [1usize, 4];
    let mut reports = Vec::new();
    for &workers in &worker_counts {
        let report_path = target.join(format!("serve-{workers}w.txt"));
        let preds_path = target.join(format!("serve-preds-{workers}w.txt"));
        let _ = std::fs::remove_file(&report_path);
        let _ = std::fs::remove_file(&preds_path);
        eprintln!("running serve_bench at {workers} worker(s)...");
        let status = Command::new(env!("CARGO"))
            .args([
                "run",
                "--release",
                "-q",
                "-p",
                "sram_serve",
                "--bin",
                "serve_bench",
                "--",
                "--requests",
                &requests.to_string(),
                "--threads",
                &workers.to_string(),
                "--report",
                &report_path.display().to_string(),
                "--predictions",
                &preds_path.display().to_string(),
            ])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("serve_bench failed at {workers} workers: {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("could not launch serve_bench: {e}");
                return ExitCode::FAILURE;
            }
        }
        let Some(kv) = read_kv_report(&report_path) else {
            eprintln!("no report at {}", report_path.display());
            return ExitCode::FAILURE;
        };
        let Ok(preds) = std::fs::read(&preds_path) else {
            eprintln!("no predictions at {}", preds_path.display());
            return ExitCode::FAILURE;
        };
        reports.push((workers, kv, preds));
    }

    let get_f64 = |kv: &std::collections::BTreeMap<String, String>, key: &str| {
        kv.get(key).and_then(|v| v.parse::<f64>().ok())
    };
    let mut table = String::new();
    table.push_str(&format!(
        "serve-report — {requests} requests through the hybrid 8T-6T serving layer\n\n"
    ));
    table.push_str(&format!(
        "{:<8} {:>14} {:>15} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14} {:>12}  digest\n",
        "workers",
        "throughput",
        "read bw",
        "p50",
        "p99",
        "queue p99",
        "svc p99",
        "energy/inf",
        "standby",
        "BER"
    ));
    for (workers, kv, _) in &reports {
        let row = format!(
            "{:<8} {:>10.1} r/s {:>9.3e} w/s {:>12} {:>12} {:>12} {:>12} {:>11.3} nJ {:>11.3} µW {:>12}  {}\n",
            workers,
            get_f64(kv, "throughput_rps").unwrap_or(0.0),
            get_f64(kv, "words_per_sec").unwrap_or(0.0),
            format_ns(get_f64(kv, "p50_ns").unwrap_or(0.0)),
            format_ns(get_f64(kv, "p99_ns").unwrap_or(0.0)),
            format_ns(get_f64(kv, "queue_p99_ns").unwrap_or(0.0)),
            format_ns(get_f64(kv, "service_p99_ns").unwrap_or(0.0)),
            get_f64(kv, "energy_per_inference_j").unwrap_or(0.0) * 1e9,
            get_f64(kv, "standby_leakage_w").unwrap_or(0.0) * 1e6,
            kv.get("observed_ber").map(String::as_str).unwrap_or("-"),
            kv.get("digest").map(String::as_str).unwrap_or("-"),
        );
        table.push_str(&row);
    }

    let wall_1 = get_f64(&reports[0].1, "wall_ns").unwrap_or(f64::NAN);
    let wall_4 = get_f64(&reports[1].1, "wall_ns").unwrap_or(f64::NAN);
    let speedup = wall_1 / wall_4;
    let identical = reports[0].2 == reports[1].2
        && reports[0].1.contains_key("digest")
        && reports[0].1.get("digest") == reports[1].1.get("digest");
    table.push_str(&format!(
        "\n4-worker speedup: {speedup:.2}x (wall {} -> {})\npredictions across worker counts: {}\n",
        format_ns(wall_1),
        format_ns(wall_4),
        if identical { "IDENTICAL" } else { "DIVERGED" },
    ));

    print!("{table}");
    if let Err(e) = std::fs::write(&out_path, &table) {
        eprintln!("could not write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("serve report written to {out_path}");

    if gate {
        let mut failed = false;
        if !identical {
            eprintln!(
                "GATE FAILED: served predictions differ between 1 and 4 workers \
                 (determinism under load is broken)"
            );
            failed = true;
        }
        // The bulk-read datapath's bandwidth figure must actually be
        // emitted (and be a positive rate) by every run.
        for (workers, kv, _) in &reports {
            match get_f64(kv, "words_per_sec") {
                Some(wps) if wps > 0.0 => {}
                _ => {
                    eprintln!(
                        "GATE FAILED: {workers}-worker report is missing a positive \
                         words_per_sec field"
                    );
                    failed = true;
                }
            }
        }
        if !(speedup.is_finite() && speedup > 0.0) {
            eprintln!("GATE FAILED: could not compute the 4-worker speedup");
            failed = true;
        } else if speedup < 1.0 / SERVE_SLOWDOWN_FACTOR {
            eprintln!(
                "GATE FAILED: 4 workers are {:.2}x slower than 1 worker \
                 (allowed: {SERVE_SLOWDOWN_FACTOR}x)",
                1.0 / speedup
            );
            failed = true;
        } else if let Some(floor) = min_speedup {
            // Opt-in scaling floor for known-multi-core runners: the
            // serving layer must actually get faster with workers, not
            // merely avoid getting slower.
            if speedup < floor {
                eprintln!(
                    "GATE FAILED: 4-worker speedup {speedup:.2}x is below the \
                     required {floor:.2}x (--min-speedup)"
                );
                failed = true;
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!("serve-load gate passed: predictions identical, 4-worker speedup {speedup:.2}x");
    }
    ExitCode::SUCCESS
}

/// The resilience counters `chaos-report` requires to be bit-identical
/// across worker counts (everything the scrub/repair/governor loop
/// decides, plus each scenario's prediction digest).
const CHAOS_INVARIANT_KEYS: &[&str] = &[
    "healthy_digest",
    "protected_digest",
    "unprotected_digest",
    "healthy_accuracy",
    "protected_accuracy",
    "unprotected_accuracy",
    "bist_weak_words",
    "bist_weak_bits",
    "bist_digest",
    "scrub_sweeps",
    "corrected_words",
    "corrected_bits",
    "uncorrectable_words",
    "rows_repaired",
    "spare_rows_free",
    "governor_boosts",
];

fn chaos_report(args: &[String]) -> ExitCode {
    let mut gate = false;
    let mut requests = 512usize;
    let mut out_path = "target/chaos-report.txt".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gate" => gate = true,
            "--requests" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => requests = n,
                _ => {
                    eprintln!("--requests requires a positive count");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown chaos-report argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let cwd = std::env::current_dir().unwrap_or_default();
    let target = cwd.join("target");
    let _ = std::fs::create_dir_all(&target);
    let worker_counts = [1usize, 4];
    let mut reports = Vec::new();
    for &workers in &worker_counts {
        let report_path = target.join(format!("chaos-{workers}w.txt"));
        let _ = std::fs::remove_file(&report_path);
        eprintln!("running serve_bench --chaos at {workers} worker(s)...");
        let status = Command::new(env!("CARGO"))
            .args([
                "run",
                "--release",
                "-q",
                "-p",
                "sram_serve",
                "--bin",
                "serve_bench",
                "--",
                "--chaos",
                "--requests",
                &requests.to_string(),
                "--threads",
                &workers.to_string(),
                "--report",
                &report_path.display().to_string(),
            ])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("serve_bench --chaos failed at {workers} workers: {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("could not launch serve_bench: {e}");
                return ExitCode::FAILURE;
            }
        }
        let Some(kv) = read_kv_report(&report_path) else {
            eprintln!("no report at {}", report_path.display());
            return ExitCode::FAILURE;
        };
        reports.push((workers, kv));
    }

    let kv = &reports[0].1;
    let get_f64 = |key: &str| kv.get(key).and_then(|v| v.parse::<f64>().ok());
    let get_str = |key: &str| kv.get(key).map(String::as_str).unwrap_or("-");
    let mut table = String::new();
    table.push_str(&format!(
        "chaos-report — {requests} requests, one shard degraded mid-load over {} waves\n\n",
        get_str("waves"),
    ));
    table.push_str(&format!(
        "{:<14} {:>9} {:>12}  digest\n",
        "scenario", "accuracy", "p99"
    ));
    for scenario in ["healthy", "protected", "unprotected"] {
        table.push_str(&format!(
            "{scenario:<14} {:>9.3} {:>12}  {}\n",
            get_f64(&format!("{scenario}_accuracy")).unwrap_or(f64::NAN),
            format_ns(get_f64(&format!("{scenario}_p99_ns")).unwrap_or(f64::NAN)),
            get_str(&format!("{scenario}_digest")),
        ));
    }
    table.push_str(&format!(
        "\nbist: {} weak words / {} weak bits (digest {})\n\
         scrub: {} sweeps, {} corrected words / {} bits, {} uncorrectable\n\
         repair: {} rows remapped, {} spares free; governor boosts {}\n",
        get_str("bist_weak_words"),
        get_str("bist_weak_bits"),
        get_str("bist_digest"),
        get_str("scrub_sweeps"),
        get_str("corrected_words"),
        get_str("corrected_bits"),
        get_str("uncorrectable_words"),
        get_str("rows_repaired"),
        get_str("spare_rows_free"),
        get_str("governor_boosts"),
    ));

    let diverged: Vec<&str> = CHAOS_INVARIANT_KEYS
        .iter()
        .copied()
        .filter(|key| reports[0].1.get(*key) != reports[1].1.get(*key))
        .collect();
    table.push_str(&format!(
        "\nresilience decisions across worker counts: {}\n",
        if diverged.is_empty() {
            "IDENTICAL".to_string()
        } else {
            format!("DIVERGED ({})", diverged.join(", "))
        },
    ));

    print!("{table}");
    if let Err(e) = std::fs::write(&out_path, &table) {
        eprintln!("could not write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("chaos report written to {out_path}");

    if gate {
        let mut failed = false;
        if !diverged.is_empty() {
            eprintln!(
                "GATE FAILED: resilience outcomes differ between 1 and 4 workers: {}",
                diverged.join(", ")
            );
            failed = true;
        }
        let healthy_acc = get_f64("healthy_accuracy");
        let protected_acc = get_f64("protected_accuracy");
        let unprotected_acc = get_f64("unprotected_accuracy");
        let healthy_p99 = get_f64("healthy_p99_ns");
        let protected_p99 = get_f64("protected_p99_ns");
        match (healthy_acc, protected_acc, unprotected_acc) {
            (Some(h), Some(p), Some(u)) => {
                if p < h - CHAOS_ACCURACY_DROP {
                    eprintln!(
                        "GATE FAILED: protected accuracy {p:.3} dropped more than \
                         {CHAOS_ACCURACY_DROP} below healthy {h:.3}"
                    );
                    failed = true;
                }
                if u >= h - CHAOS_ACCURACY_DROP {
                    eprintln!(
                        "GATE FAILED: unprotected accuracy {u:.3} survived within \
                         {CHAOS_ACCURACY_DROP} of healthy {h:.3} — the degradation \
                         schedule is too weak to exercise the resilience loop"
                    );
                    failed = true;
                }
            }
            _ => {
                eprintln!("GATE FAILED: report is missing scenario accuracies");
                failed = true;
            }
        }
        match (healthy_p99, protected_p99) {
            (Some(h), Some(p)) if h > 0.0 => {
                if p > h * CHAOS_P99_FACTOR {
                    eprintln!(
                        "GATE FAILED: protected p99 {} exceeds {CHAOS_P99_FACTOR}x \
                         healthy p99 {}",
                        format_ns(p),
                        format_ns(h)
                    );
                    failed = true;
                }
            }
            _ => {
                eprintln!("GATE FAILED: report is missing scenario p99 latencies");
                failed = true;
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!(
            "chaos gate passed: decisions identical across workers, protected run held \
             the accuracy and p99 bounds, unprotected run measurably failed"
        );
    }
    ExitCode::SUCCESS
}

/// The three `net_bench` runs `net-report` drives: two sub-saturation
/// runs at different connection counts (the determinism probe) and one
/// burst run with tight in-flight caps (the overload probe).
struct NetRun {
    label: &'static str,
    connections: usize,
    /// `None` = the configured `--rate`; `Some(0.0)` = burst.
    rate: Option<f64>,
    /// Extra `net_bench` flags (in-flight caps for the burst probe).
    extra: &'static [&'static str],
}

const NET_RUNS: &[NetRun] = &[
    NetRun {
        label: "low/2conn",
        connections: 2,
        rate: None,
        extra: &[],
    },
    NetRun {
        label: "low/8conn",
        connections: 8,
        rate: None,
        extra: &[],
    },
    NetRun {
        label: "burst/4conn",
        connections: 4,
        rate: Some(0.0),
        extra: &["--global-inflight", "64", "--soft-inflight", "32"],
    },
];

fn net_report(args: &[String]) -> ExitCode {
    let mut gate = false;
    let mut requests = 256usize;
    let mut rate = 600.0f64;
    let mut slo_ms = NET_SLO_MS;
    let mut out_path = "target/net-report.txt".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gate" => gate = true,
            "--requests" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => requests = n,
                _ => {
                    eprintln!("--requests requires a positive count");
                    return ExitCode::FAILURE;
                }
            },
            "--rate" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if r > 0.0 && r.is_finite() => rate = r,
                _ => {
                    eprintln!("--rate requires a positive requests/second figure");
                    return ExitCode::FAILURE;
                }
            },
            "--slo-ms" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(x) if x > 0.0 && x.is_finite() => slo_ms = x,
                _ => {
                    eprintln!("--slo-ms requires a positive millisecond bound");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown net-report argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let cwd = std::env::current_dir().unwrap_or_default();
    let target = cwd.join("target");
    let _ = std::fs::create_dir_all(&target);
    let mut reports = Vec::new();
    for run in NET_RUNS {
        let run_rate = run.rate.unwrap_or(rate);
        let report_path = target.join(format!("net-{}.txt", run.label.replace('/', "-")));
        let _ = std::fs::remove_file(&report_path);
        eprintln!(
            "running net_bench {} ({} req, rate {}, {} connections)...",
            run.label,
            requests,
            if run_rate > 0.0 {
                format!("{run_rate:.0}/s")
            } else {
                "burst".to_string()
            },
            run.connections
        );
        let mut cmd = Command::new(env!("CARGO"));
        cmd.args([
            "run",
            "--release",
            "-q",
            "-p",
            "sram_net",
            "--bin",
            "net_bench",
            "--",
            "--tenants",
            "2",
            "--requests",
            &requests.to_string(),
            "--rate",
            &run_rate.to_string(),
            "--connections",
            &run.connections.to_string(),
            "--report",
            &report_path.display().to_string(),
        ]);
        cmd.args(run.extra);
        match cmd.status() {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("net_bench {} failed: {s}", run.label);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("could not launch net_bench: {e}");
                return ExitCode::FAILURE;
            }
        }
        let Some(kv) = read_kv_report(&report_path) else {
            eprintln!("no report at {}", report_path.display());
            return ExitCode::FAILURE;
        };
        reports.push((run, kv));
    }

    let get_f64 = |kv: &std::collections::BTreeMap<String, String>, key: &str| {
        kv.get(key).and_then(|v| v.parse::<f64>().ok())
    };
    fn get_str<'a>(kv: &'a std::collections::BTreeMap<String, String>, key: &str) -> &'a str {
        kv.get(key).map(String::as_str).unwrap_or("-")
    }
    let mut table = String::new();
    table.push_str(&format!(
        "net-report — {requests} open-loop requests over real sockets, 2 resident tenants\n\n"
    ));
    table.push_str(&format!(
        "{:<12} {:>6} {:>6} {:>6} {:>5} {:>12} {:>12} {:>12}  digest\n",
        "run", "sent", "ok", "shed", "err", "sojourn p50", "sojourn p99", "service p99"
    ));
    for (run, kv) in &reports {
        table.push_str(&format!(
            "{:<12} {:>6} {:>6} {:>6} {:>5} {:>12} {:>12} {:>12}  {}\n",
            run.label,
            get_str(kv, "sent"),
            get_str(kv, "ok"),
            get_str(kv, "shed"),
            get_str(kv, "errors"),
            format_ns(get_f64(kv, "sojourn_p50_ns").unwrap_or(f64::NAN)),
            format_ns(get_f64(kv, "sojourn_p99_ns").unwrap_or(f64::NAN)),
            format_ns(get_f64(kv, "service_p99_ns").unwrap_or(f64::NAN)),
            get_str(kv, "digest"),
        ));
    }

    let low = &reports[0];
    let low_alt = &reports[1];
    let burst = &reports[2];
    let digests_match =
        low.1.contains_key("digest") && low.1.get("digest") == low_alt.1.get("digest");
    table.push_str(&format!(
        "\ndigests across connection counts: {}\n",
        if digests_match {
            "IDENTICAL"
        } else {
            "DIVERGED"
        },
    ));
    table.push_str(&format!(
        "burst probe: {} shed of {} sent ({} degrade events, {} served drowsy)\n",
        get_str(&burst.1, "shed"),
        get_str(&burst.1, "sent"),
        get_str(&burst.1, "degrade_events"),
        get_str(&burst.1, "drowsy_served"),
    ));

    print!("{table}");
    if let Err(e) = std::fs::write(&out_path, &table) {
        eprintln!("could not write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("net report written to {out_path}");

    if gate {
        let mut failed = false;
        if !digests_match {
            eprintln!(
                "GATE FAILED: response digests differ between {} and {} \
                 (determinism across connection interleavings is broken)",
                low.0.label, low_alt.0.label
            );
            failed = true;
        }
        for (run, kv) in [low, low_alt] {
            // Sub-saturation runs must serve everything: any shed, error,
            // or timeout at this rate is a capacity/liveness regression —
            // and the digest comparison is only meaningful at zero shed.
            for key in ["shed", "errors"] {
                if get_f64(kv, key).unwrap_or(f64::NAN) != 0.0 {
                    eprintln!(
                        "GATE FAILED: {} run has nonzero {key} at the sub-saturation rate",
                        run.label
                    );
                    failed = true;
                }
            }
            if kv.get("timed_out").map(String::as_str) != Some("false") {
                eprintln!("GATE FAILED: {} run timed out draining", run.label);
                failed = true;
            }
            if kv.get("digest") != kv.get("server_digest") {
                eprintln!(
                    "GATE FAILED: {} run's client and server digests disagree \
                     (responses were lost or fabricated)",
                    run.label
                );
                failed = true;
            }
            match get_f64(kv, "sojourn_p99_ns") {
                Some(p99) if p99 > 0.0 => {
                    if p99 > slo_ms * 1e6 {
                        eprintln!(
                            "GATE FAILED: {} sojourn p99 {} exceeds the {slo_ms} ms SLO",
                            run.label,
                            format_ns(p99)
                        );
                        failed = true;
                    }
                }
                _ => {
                    eprintln!("GATE FAILED: {} run is missing sojourn_p99_ns", run.label);
                    failed = true;
                }
            }
        }
        // The burst probe must actually overload: explicit sheds prove the
        // admission path answers under pressure instead of hanging.
        if get_f64(&burst.1, "shed").unwrap_or(0.0) <= 0.0 {
            eprintln!(
                "GATE FAILED: burst run shed nothing — the overload probe no longer \
                 exercises admission control"
            );
            failed = true;
        }
        if get_f64(&burst.1, "errors").unwrap_or(f64::NAN) != 0.0 {
            eprintln!("GATE FAILED: burst run has errors (overload must shed, not break)");
            failed = true;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!(
            "net gate passed: digests identical across connection counts, zero shed at \
             {rate:.0}/s, sojourn p99 within {slo_ms} ms, burst probe shed explicitly"
        );
    }
    ExitCode::SUCCESS
}

/// Worker counts `gen-report` sweeps the design space at; every digest in
/// the report must be identical across them (observables are functions of
/// the spec and seeds, never of scheduling).
const GEN_THREADS: &[usize] = &[1, 4];

/// Random specs per `gen-report` run (the issue's sweep floor).
const GEN_RANDOM_SPECS: usize = 8;

fn gen_report(args: &[String]) -> ExitCode {
    let mut gate = false;
    let mut out_path = "target/gen-report.txt".to_string();
    let mut random = GEN_RANDOM_SPECS;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gate" => gate = true,
            "--random" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => random = n,
                _ => {
                    eprintln!("--random requires a positive count");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown gen-report argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let cwd = std::env::current_dir().unwrap_or_default();
    let target = cwd.join("target");
    let _ = std::fs::create_dir_all(&target);
    let mut reports = Vec::new();
    for &threads in GEN_THREADS {
        let report_path = target.join(format!("gen-report-{threads}t.txt"));
        let _ = std::fs::remove_file(&report_path);
        eprintln!("sweeping the design space ({random} random specs, {threads} worker threads)...");
        let status = Command::new(env!("CARGO"))
            .args([
                "run",
                "--release",
                "-q",
                "-p",
                "sram_gen",
                "--bin",
                "gen_report",
                "--",
                "--specs-dir",
                "crates/gen/specs",
                "--corpus-dir",
                "crates/gen/corpus",
                "--random",
                &random.to_string(),
                "--threads",
                &threads.to_string(),
                "--report",
                &report_path.display().to_string(),
            ])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("gen_report ({threads} threads) failed: {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("could not launch gen_report: {e}");
                return ExitCode::FAILURE;
            }
        }
        let Some(kv) = read_kv_report(&report_path) else {
            eprintln!("no report at {}", report_path.display());
            return ExitCode::FAILURE;
        };
        reports.push((threads, kv));
    }

    let base = &reports[0].1;
    let get = |key: &str| base.get(key).map(String::as_str).unwrap_or("-");
    let mut table = String::new();
    table.push_str(&format!(
        "gen-report — design-space sweep: {} committed specs, {} random specs, \
         {} corpus files\n\n",
        get("specs_total"),
        get("random_total"),
        get("corpus_total"),
    ));
    table.push_str(&format!(
        "{:<18} {:>9} {:>7} {:>18} {:>18}\n",
        "spec", "words", "banks", "layout digest", "report digest"
    ));
    let mut spec_keys: Vec<String> = base
        .keys()
        .filter_map(|k| k.strip_suffix("_report_digest").map(str::to_string))
        .collect();
    spec_keys.sort();
    for prefix in &spec_keys {
        table.push_str(&format!(
            "{:<18} {:>9} {:>7} {:>18} {:>18}\n",
            prefix.strip_prefix("spec_").unwrap_or(prefix),
            get(&format!("{prefix}_words")),
            get(&format!("{prefix}_banks")),
            get(&format!("{prefix}_layout_digest")),
            get(&format!("{prefix}_report_digest")),
        ));
    }
    table.push_str(&format!(
        "\npaper fixture layout match: {}\ncorpus: {} of {} rejected\nfailures: {}\n",
        get("paper_fixture_match"),
        get("corpus_rejected"),
        get("corpus_total"),
        get("failures"),
    ));

    // Digest stability across worker counts.
    let digest_keys: Vec<&String> = base.keys().filter(|k| k.ends_with("_digest")).collect();
    let mut diverged: Vec<&str> = Vec::new();
    for (_, kv) in &reports[1..] {
        for key in &digest_keys {
            if kv.get(*key) != base.get(*key) {
                diverged.push(key);
            }
        }
    }
    table.push_str(&format!(
        "digests across {GEN_THREADS:?} worker threads: {}\n",
        if diverged.is_empty() {
            "IDENTICAL"
        } else {
            "DIVERGED"
        },
    ));

    print!("{table}");
    if let Err(e) = std::fs::write(&out_path, &table) {
        eprintln!("could not write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("gen report written to {out_path}");

    if gate {
        let mut failed = false;
        if !diverged.is_empty() {
            eprintln!(
                "GATE FAILED: {} digest(s) differ across worker counts (e.g. {}) — \
                 sweep observables depend on scheduling",
                diverged.len(),
                diverged[0]
            );
            failed = true;
        }
        for (threads, kv) in &reports {
            // `random_ok` is a count (gated below); every other `*_ok` is
            // a per-spec boolean.
            for key in kv
                .keys()
                .filter(|k| k.ends_with("_ok") && k.as_str() != "random_ok")
            {
                if kv.get(key).map(String::as_str) != Some("true") {
                    eprintln!("GATE FAILED: {key} is not true at {threads} threads");
                    failed = true;
                }
            }
            if kv.get("paper_fixture_match").map(String::as_str) != Some("true") {
                eprintln!(
                    "GATE FAILED: generated digits layout no longer matches the paper's \
                     hand-wired fixture ({threads} threads)"
                );
                failed = true;
            }
            if kv.get("corpus_total").is_none()
                || kv.get("corpus_rejected") != kv.get("corpus_total")
            {
                eprintln!(
                    "GATE FAILED: malformed corpus not fully rejected at {threads} threads \
                     ({} of {})",
                    kv.get("corpus_rejected").map(String::as_str).unwrap_or("-"),
                    kv.get("corpus_total").map(String::as_str).unwrap_or("-"),
                );
                failed = true;
            }
            let random_ok = kv.get("random_ok").and_then(|v| v.parse::<usize>().ok());
            if random_ok != kv.get("random_total").and_then(|v| v.parse().ok())
                || random_ok.unwrap_or(0) < GEN_RANDOM_SPECS.min(random)
            {
                eprintln!(
                    "GATE FAILED: only {} of {} random specs swept cleanly at {threads} threads",
                    kv.get("random_ok").map(String::as_str).unwrap_or("-"),
                    kv.get("random_total").map(String::as_str).unwrap_or("-"),
                );
                failed = true;
            }
            if kv.get("failures").map(String::as_str) != Some("0") {
                eprintln!(
                    "GATE FAILED: gen_report counted {} failure(s) at {threads} threads",
                    kv.get("failures").map(String::as_str).unwrap_or("-")
                );
                failed = true;
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!(
            "design-space gate passed: every spec built and characterized, digests \
             identical across worker counts, paper fixture matched, corpus fully rejected"
        );
    }
    ExitCode::SUCCESS
}
